"""Composition of the TER-iDS pipeline stages.

A :class:`Pipeline` wires the six stages of Algorithm 2 over one shared
:class:`~repro.runtime.context.RuntimeContext` and provides the seed-exact
per-tuple path (:meth:`process_one`) that the
:class:`~repro.runtime.executors.SerialExecutor` drives.  Batch scheduling
lives in :class:`~repro.runtime.executors.MicroBatchExecutor`, which calls
the same stage objects with different interleaving.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.matching import MatchPair
from repro.core.tuples import Record
from repro.metrics.timing import (
    STAGE_CDD_SELECTION,
    STAGE_ER,
    STAGE_IMPUTATION,
)
from repro.runtime.context import RuntimeContext
from repro.runtime.stages import (
    CandidateLookupStage,
    ImputationStage,
    MaintenanceStage,
    MatchingStage,
    RuleSelectionStage,
    Stage,
    SynopsisStage,
    TupleTask,
)


class Pipeline:
    """The staged online operator over one runtime context."""

    def __init__(self, ctx: RuntimeContext) -> None:
        self.ctx = ctx
        self.rule_selection = RuleSelectionStage(ctx)
        self.imputation = ImputationStage(ctx)
        self.synopsis = SynopsisStage(ctx)
        self.candidates = CandidateLookupStage(ctx)
        self.matching = MatchingStage(ctx)
        self.maintenance = MaintenanceStage(ctx)

    @property
    def stages(self) -> Tuple[Stage, ...]:
        """The stages in dataflow order (rule selection → maintenance)."""
        return (self.rule_selection, self.imputation, self.synopsis,
                self.candidates, self.matching, self.maintenance)

    def process_one(self, record: Record) -> List[MatchPair]:
        """Process one arriving tuple with the seed engine's exact sequence.

        Stage order, timer scopes and result-set update interleaving all
        mirror the original monolithic ``TERiDSEngine.process``, so the
        serial path is bit-identical to the seed (match sets *and* pruning /
        imputation / timing counters).
        """
        ctx = self.ctx
        tel = ctx.telemetry
        ctx.timestamps_processed += 1
        task = TupleTask(record=record)
        with tel.span("maintenance"):
            self.maintenance.expire(record.source)

        # --- online CDD selection (index access, Figure 6 stage 1) ---
        with ctx.timer.measure(STAGE_CDD_SELECTION), tel.span("rule_selection"):
            task.selected_rules = self.rule_selection.select(record)

        # --- online imputation (Figure 6 stage 2) ---
        with ctx.timer.measure(STAGE_IMPUTATION), tel.span("imputation"):
            task.imputed = self.imputation.impute(record, task.selected_rules)
            task.synopsis = self.synopsis.build(task.imputed)

        # --- online topic-aware ER (Figure 6 stage 3) ---
        with ctx.timer.measure(STAGE_ER), tel.span("entity_resolution"):
            with tel.span("lookup"):
                task.candidates = self.candidates.lookup(task.synopsis)
            with tel.span("refine"):
                self.matching.evaluate_serial(task)
            with tel.span("maintenance"):
                self.maintenance.insert(task.synopsis)

        return task.matches
