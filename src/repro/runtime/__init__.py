"""The staged TER-iDS streaming runtime.

Decomposes the online operator (Algorithm 2) into independently schedulable
stages over a shared :class:`~repro.runtime.context.RuntimeContext`, a
:class:`~repro.runtime.pipeline.Pipeline` composing them, and pluggable
:class:`~repro.runtime.executors.Executor` strategies — the seed-faithful
:class:`~repro.runtime.executors.SerialExecutor` and the amortising
:class:`~repro.runtime.executors.MicroBatchExecutor` (optionally fanned out
to a process pool sharded by ER-grid region).  Checkpoint / restore of the
online state lives in :mod:`repro.runtime.checkpoint`; the self-tuning
sense→decide→act loop over the executor/ingest knobs lives in
:mod:`repro.runtime.controller`.
"""

from repro.runtime.checkpoint import engine_state_to_dict, restore_engine_state
from repro.runtime.controller import (
    MODE_ACTIVE,
    MODE_OBSERVE,
    MODE_OFF,
    ControllerPolicy,
    RuntimeController,
)
from repro.runtime.context import (
    IngestStats,
    QueryStats,
    RuntimeContext,
    TransportStats,
)
from repro.runtime.query import QueryResolver, ResolvedCluster
from repro.runtime.evaluation import (
    evaluate_candidates,
    evaluate_pair_cached,
    evaluate_task_batch,
    instance_profiles,
    refine_pair_cached,
)
from repro.runtime.executors import (
    POOL_AUTO,
    POOL_PER_BATCH,
    POOL_PERSISTENT,
    Executor,
    MicroBatchExecutor,
    SerialExecutor,
    resolve_auto_pool_mode,
)
from repro.runtime.pipeline import Pipeline
from repro.runtime.workers import (
    PersistentRefinementPool,
    ResidentShard,
    ShardedERPool,
)
from repro.runtime.stages import (
    CandidateLookupStage,
    ImputationStage,
    MaintenanceStage,
    MatchingStage,
    RuleSelectionStage,
    Stage,
    SynopsisStage,
    TupleTask,
)

__all__ = [
    "CandidateLookupStage",
    "ControllerPolicy",
    "Executor",
    "ImputationStage",
    "IngestStats",
    "MaintenanceStage",
    "MODE_ACTIVE",
    "MODE_OBSERVE",
    "MODE_OFF",
    "MatchingStage",
    "MicroBatchExecutor",
    "POOL_AUTO",
    "POOL_PERSISTENT",
    "POOL_PER_BATCH",
    "PersistentRefinementPool",
    "Pipeline",
    "QueryResolver",
    "QueryStats",
    "ResidentShard",
    "ResolvedCluster",
    "RuleSelectionStage",
    "RuntimeContext",
    "RuntimeController",
    "SerialExecutor",
    "ShardedERPool",
    "Stage",
    "SynopsisStage",
    "TransportStats",
    "TupleTask",
    "engine_state_to_dict",
    "evaluate_candidates",
    "evaluate_pair_cached",
    "evaluate_task_batch",
    "instance_profiles",
    "refine_pair_cached",
    "resolve_auto_pool_mode",
    "restore_engine_state",
]
