"""Executors: scheduling strategies over the staged TER-iDS pipeline.

Two implementations of the :class:`Executor` contract:

* :class:`SerialExecutor` — one tuple at a time through
  :meth:`Pipeline.process_one`; bit-identical to the seed engine.
* :class:`MicroBatchExecutor` — ingests tuples in configurable batches and
  reorganises the work for throughput while provably preserving the serial
  match sets:

  1. the *order-free* stages (rule selection, imputation, synopsis) run for
     the whole batch up front — rule selection grouped by missing-attribute
     signature, imputation with a cross-record ``cand(s[A_j])`` cache;
  2. the *order-bound* maintenance + grid lookup run per tuple in arrival
     order (cheap), recording candidate lists and eviction events;
  3. pair refinement — the dominant cost — is evaluated as a pure function
     of the recorded (query, candidate) synopses with cached per-instance
     profiles, either in-process or fanned out to a ``concurrent.futures``
     process pool sharded by ER-grid region;
  4. the result-set mutations (evictions, new pairs) are replayed in
     arrival order, reproducing the serial entity-result-set exactly.

Why this is safe: candidate lookup for tuple ``t`` observes exactly the
evictions/insertions of tuples before ``t`` (step 2 preserves arrival
order), and each pair verdict depends only on the two synopses and the
operator thresholds — never on when it is computed.  Step 4 then serialises
the state mutations back into arrival order.
"""

from __future__ import annotations

import abc
from typing import List, Optional, Sequence, Tuple

from repro.core.matching import MatchPair
from repro.core.tuples import Record
from repro.metrics.timing import (
    STAGE_CDD_SELECTION,
    STAGE_ER,
    STAGE_IMPUTATION,
)
from repro.runtime.evaluation import evaluate_partition
from repro.runtime.pipeline import Pipeline
from repro.runtime.stages import TupleTask


class Executor(abc.ABC):
    """Scheduling strategy for pushing arriving tuples through a pipeline."""

    #: Preferred ingestion granularity; ``TERiDSEngine.run`` chunks the
    #: input sequence into batches of this size.
    batch_size: int = 1

    @abc.abstractmethod
    def process_batch(self, pipeline: Pipeline,
                      records: Sequence[Record]) -> List[List[MatchPair]]:
        """Process ``records`` (in arrival order); per-record match lists."""

    def close(self) -> None:
        """Release executor-owned resources (process pools)."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SerialExecutor(Executor):
    """The seed semantics: one tuple at a time, bit-identical results."""

    batch_size = 1

    def process_batch(self, pipeline: Pipeline,
                      records: Sequence[Record]) -> List[List[MatchPair]]:
        return [pipeline.process_one(record) for record in records]


#: Result-set replay events recorded by the micro-batch executor.
_EVICT = 0
_EMIT = 1


class MicroBatchExecutor(Executor):
    """Micro-batch scheduling with grouped/amortised stage execution.

    Parameters
    ----------
    batch_size:
        Ingestion granularity.  Larger batches amortise more (rule-group
        resolution, imputation candidate sets, instance profiles) at the
        cost of latency; 32–128 is a good range for the bundled workloads.
    max_workers:
        When ``> 1``, pair refinement is fanned out to a
        ``concurrent.futures.ProcessPoolExecutor`` with the batch
        partitioned by ER-grid region (``ERGrid.region_of``).  Worth it only
        when refinement is heavy (large instance counts / wide windows):
        every partition ships its synopses to the worker, so small workloads
        are faster in-process.  ``None`` (default) keeps everything in the
        calling process.
    """

    def __init__(self, batch_size: int = 32,
                 max_workers: Optional[int] = None) -> None:
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.batch_size = batch_size
        self.max_workers = max_workers
        self._pool = None

    # -- resources -----------------------------------------------------------
    def _ensure_pool(self):
        if self._pool is None:
            from concurrent.futures import ProcessPoolExecutor

            self._pool = ProcessPoolExecutor(max_workers=self.max_workers)
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    # -- scheduling ----------------------------------------------------------
    def process_batch(self, pipeline: Pipeline,
                      records: Sequence[Record]) -> List[List[MatchPair]]:
        ctx = pipeline.ctx
        if ctx.imputer.candidate_cache is None:
            # Cross-record memoisation of cand(s[A_j]) — see CDDImputer.
            ctx.imputer.candidate_cache = {}
        tasks = [TupleTask(record=record) for record in records]

        # Phase 1: order-free stages over the whole batch.
        with ctx.timer.measure(STAGE_CDD_SELECTION):
            pipeline.rule_selection.run(tasks)
        with ctx.timer.measure(STAGE_IMPUTATION):
            pipeline.imputation.run(tasks)
            pipeline.synopsis.run(tasks)

        with ctx.timer.measure(STAGE_ER):
            # Phase 2: order-bound maintenance + candidate lookup, with the
            # result-set mutations deferred into an event log.
            events: List[Tuple[int, object]] = []
            for task in tasks:
                ctx.timestamps_processed += 1
                evicted = pipeline.maintenance.expire(task.record.source,
                                                      defer_result_set=True)
                if evicted is not None:
                    events.append((_EVICT, (evicted.record.rid,
                                            evicted.record.source)))
                task.candidates = pipeline.candidates.lookup(task.synopsis)
                events.append((_EMIT, task))
                pipeline.maintenance.insert(task.synopsis)

            # Phase 3: pure pair refinement (in-process or pooled).
            if self.max_workers is not None and self.max_workers > 1:
                self._evaluate_pooled(pipeline, tasks)
            else:
                for task in tasks:
                    pipeline.matching.evaluate_pure(task)

            # Phase 4: replay result-set mutations in arrival order.
            result_set = ctx.result_set
            for kind, payload in events:
                if kind == _EVICT:
                    result_set.remove_record(*payload)
                else:
                    for pair in payload.matches:
                        result_set.add(pair)

        return [task.matches for task in tasks]

    # -- pooled refinement ---------------------------------------------------
    def _evaluate_pooled(self, pipeline: Pipeline,
                         tasks: Sequence[TupleTask]) -> None:
        """Fan pair refinement out to the process pool, sharded by region."""
        ctx = pipeline.ctx
        pruning = ctx.pruning
        pending = [task for task in tasks if task.candidates]
        if not pending:
            return
        partitions: dict = {}
        for task in pending:
            region = ctx.grid.region_of(task.synopsis, self.max_workers)
            partitions.setdefault(region, []).append(task)

        pool = self._ensure_pool()
        futures = {}
        for region, grouped in sorted(partitions.items()):
            items = [(task.synopsis, task.candidates) for task in grouped]
            future = pool.submit(
                evaluate_partition, items,
                keywords=pruning.keywords, gamma=pruning.gamma,
                alpha=pruning.alpha, use_topic=pruning.use_topic,
                use_similarity=pruning.use_similarity,
                use_probability=pruning.use_probability,
                use_instance=pruning.use_instance)
            futures[future] = grouped

        for future, grouped in futures.items():
            verdicts_per_task, partition_stats = future.result()
            pruning.stats.merge(partition_stats)
            for task, verdicts in zip(grouped, verdicts_per_task):
                for candidate, (is_match, probability) in zip(task.candidates,
                                                              verdicts):
                    if is_match:
                        task.matches.append(
                            pipeline.matching.make_pair(task, candidate,
                                                        probability))
