"""Executors: scheduling strategies over the staged TER-iDS pipeline.

Two implementations of the :class:`Executor` contract:

* :class:`SerialExecutor` — one tuple at a time through
  :meth:`Pipeline.process_one`; bit-identical to the seed engine.
* :class:`MicroBatchExecutor` — ingests tuples in configurable batches and
  reorganises the work for throughput while provably preserving the serial
  match sets:

  1. the *order-free* stages (rule selection, imputation, synopsis) run for
     the whole batch up front — rule selection grouped by missing-attribute
     signature, imputation with a cross-record ``cand(s[A_j])`` cache, and
     (when vectorized) synopsis packing into columnar blocks;
  2. the *order-bound* maintenance + grid lookup run per tuple in arrival
     order (cheap), recording candidate lists and eviction events;
  3. pair refinement — the dominant cost — is evaluated as a pure function
     of the recorded (query, candidate) synopses: in-process through the
     vectorized :func:`~repro.core.pruning.batch_prune` kernel over the
     grid's resident packed store, or fanned out by ER-grid region to
     either a :class:`~repro.runtime.workers.PersistentRefinementPool`
     (workers hold resident synopsis stores; only deltas and work orders
     cross the process boundary) or a per-batch ``concurrent.futures``
     pool (the legacy mode, which re-ships every partition's synopses);
  4. the result-set mutations (evictions, new pairs) are replayed in
     arrival order, reproducing the serial entity-result-set exactly.

Why this is safe: candidate lookup for tuple ``t`` observes exactly the
evictions/insertions of tuples before ``t`` (step 2 preserves arrival
order), and each pair verdict depends only on the two synopses and the
operator thresholds — never on when it is computed.  Step 4 then serialises
the state mutations back into arrival order.
"""

from __future__ import annotations

import abc
import pickle
from typing import List, Optional, Sequence, Tuple

from repro.core.matching import MatchPair
from repro.core.pruning import HAS_NUMPY
from repro.core.tuples import Record
from repro.metrics.timing import (
    STAGE_CDD_SELECTION,
    STAGE_ER,
    STAGE_IMPUTATION,
)
from repro.core.pruning import PruningStats
from repro.runtime.evaluation import evaluate_partition_blob, evaluate_task_batch
from repro.runtime.pipeline import Pipeline
from repro.runtime.shm_plane import HAS_SHM, GridJournal, ShmPlane
from repro.runtime.stages import TupleTask
from repro.runtime.workers import (
    PersistentRefinementPool,
    ShardedERPool,
    ShmShardedERPool,
    SynopsisKey,
    evaluate_shard_partition,
)


class Executor(abc.ABC):
    """Scheduling strategy for pushing arriving tuples through a pipeline."""

    #: Preferred ingestion granularity; ``TERiDSEngine.run`` chunks the
    #: input sequence into batches of this size.
    batch_size: int = 1

    @abc.abstractmethod
    def process_batch(self, pipeline: Pipeline,
                      records: Sequence[Record]) -> List[List[MatchPair]]:
        """Process ``records`` (in arrival order); per-record match lists."""

    def close(self) -> None:
        """Release executor-owned resources (process pools)."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SerialExecutor(Executor):
    """The seed semantics: one tuple at a time, bit-identical results."""

    batch_size = 1

    def process_batch(self, pipeline: Pipeline,
                      records: Sequence[Record]) -> List[List[MatchPair]]:
        with pipeline.ctx.begin_batch(len(records)):
            return [pipeline.process_one(record) for record in records]


#: Result-set replay events recorded by the micro-batch executor.
_EVICT = 0
_EMIT = 1

#: Pooled refinement modes.
POOL_PERSISTENT = "persistent"
POOL_PER_BATCH = "per-batch"
POOL_AUTO = "auto"

#: Decision boundaries of ``pool_mode="auto"`` (pinned by unit tests).
#: At and above this configured batch size the resident-store pool always
#: wins: per-batch mode re-ships the whole window's synopses every batch,
#: and the measured crossover (BENCH_runtime_batching.json, PR 3) sits well
#: below 16 tuples/batch.
AUTO_PERSISTENT_MIN_BATCH = 16
#: Below that size, switch to the persistent pool once the *measured*
#: per-batch shipping cost exceeds this many bytes per work order — at that
#: point re-pickling dominates even small batches.
AUTO_PERSISTENT_BYTES_PER_ORDER = 8192
#: Minimum number of measured batches before trusting the byte estimate.
AUTO_WARMUP_BATCHES = 2


def resolve_auto_pool_mode(batch_size: int, transport) -> str:
    """The ``pool_mode="auto"`` decision rule.

    ``batch_size`` is the *observed* size of the batch at hand (an
    ingestion front-end may form batches much smaller than the executor's
    configured ``batch_size`` knob).  Static part: a batch of
    ``AUTO_PERSISTENT_MIN_BATCH`` or more tuples always picks the
    persistent pool.  Dynamic part: smaller batches start in per-batch
    mode (no resident stores to maintain) and upgrade once ``transport``
    has measured at least ``AUTO_WARMUP_BATCHES`` batches whose mean
    shipping cost exceeds ``AUTO_PERSISTENT_BYTES_PER_ORDER`` bytes per
    work order.
    """
    if batch_size >= AUTO_PERSISTENT_MIN_BATCH:
        return POOL_PERSISTENT
    if (transport.batches >= AUTO_WARMUP_BATCHES
            and transport.orders_shipped > 0
            and transport.bytes_shipped / transport.orders_shipped
            > AUTO_PERSISTENT_BYTES_PER_ORDER):
        return POOL_PERSISTENT
    return POOL_PER_BATCH


class MicroBatchExecutor(Executor):
    """Micro-batch scheduling with grouped/amortised stage execution.

    Parameters
    ----------
    batch_size:
        Ingestion granularity.  Larger batches amortise more (rule-group
        resolution, imputation candidate sets, instance profiles) at the
        cost of latency; 32–128 is a good range for the bundled workloads.
    max_workers:
        When ``> 1``, pair refinement is fanned out to worker processes
        with the batch partitioned by ER-grid region
        (``ERGrid.region_of``).  Worth it only when refinement is heavy
        (large instance counts / wide windows); small workloads are faster
        in-process.  ``None`` (default) keeps everything in the calling
        process.
    vectorized:
        Evaluate the three bound strategies (Theorems 4.1–4.3) through the
        columnar :func:`~repro.core.pruning.batch_prune` kernel instead of
        per-pair scalar calls.  Defaults to ``None`` = auto (on when numpy
        is importable); forced ``True`` raises without numpy, ``False``
        keeps the scalar cascade.  Verdicts and counters are identical
        either way.
    pool_mode:
        How ``max_workers > 1`` fans refinement out:

        * ``"persistent"`` (default) — a
          :class:`~repro.runtime.workers.PersistentRefinementPool` whose
          workers keep resident synopsis stores; the executor ships only
          synopsis deltas, ``(query, candidates)`` key orders and eviction
          notices, so steady-state batches stop re-pickling the window;
        * ``"per-batch"`` — the legacy ``concurrent.futures`` pool that
          serialises every partition's synopses each batch (kept as the
          shipping-cost baseline; see ``TransportStats``);
        * ``"auto"`` — pick between the two from the observed batch sizes
          and the measured ``TransportStats``
          (:func:`resolve_auto_pool_mode`).  The choice is sticky once it
          lands on ``"persistent"``: downgrading would throw away the
          workers' warm resident stores.
    shard_lookup:
        Run the *whole* ER phase — candidate lookup, pruning cascade and
        refinement, not just refinement — on the worker pool: each worker
        owns a resident ER-grid replica and evaluates the queries of its
        ``ERGrid.region_of`` shard, so grid scan time scales with
        ``max_workers`` and only matches + counters cross the process
        boundary (main keeps a thin routing grid).  Requires
        ``max_workers`` (the shard count; ``1`` is allowed).  Composes
        with ``pool_mode``: ``"persistent"`` keeps the replicas resident
        across batches (:class:`~repro.runtime.workers.ShardedERPool`),
        ``"per-batch"`` re-ships the window snapshot every batch (the
        stateless shipping-cost baseline).  Match sets and every counter
        are identical to the in-process paths at any shard count.
    shm_plane:
        Back the sharded ER phase with a shared-memory columnar plane
        (:class:`~repro.runtime.shm_plane.ShmPlane`): the main grid's
        packed-synopsis and cell-aggregate stores live in
        ``multiprocessing.shared_memory`` segments that the shard workers
        *map* read-only instead of receiving per-batch broadcast deltas.
        The main process is the single writer (per-batch epoch: write all
        deltas, bump the epoch, then ship the op journal); per-record
        Python state is *routed* only to the shards whose regions the
        record's cells touch, with lazy backfill for cross-region
        queries.  Requires ``shard_lookup``, ``vectorized``,
        ``pool_mode="persistent"`` and a platform with
        ``multiprocessing.shared_memory``.  Match sets and counters stay
        bit-identical to every other path.
    delta_routing:
        Only meaningful with ``shm_plane``: route each arrival's record
        delta to the touched regions only (default).  ``False`` broadcasts
        the delta to every worker — the shipping-cost baseline the
        benchmarks compare against.
    """

    def __init__(self, batch_size: int = 32,
                 max_workers: Optional[int] = None,
                 vectorized: Optional[bool] = None,
                 pool_mode: str = POOL_PERSISTENT,
                 shard_lookup: bool = False,
                 shm_plane: bool = False,
                 delta_routing: bool = True) -> None:
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        if pool_mode not in (POOL_PERSISTENT, POOL_PER_BATCH, POOL_AUTO):
            raise ValueError(
                f"pool_mode must be {POOL_PERSISTENT!r}, {POOL_PER_BATCH!r} "
                f"or {POOL_AUTO!r}, got {pool_mode!r}")
        if vectorized and not HAS_NUMPY:
            raise ValueError("vectorized=True requires numpy")
        if shard_lookup and max_workers is None:
            raise ValueError("shard_lookup requires max_workers (the number "
                             "of grid shards)")
        self.batch_size = batch_size
        self.max_workers = max_workers
        self.vectorized = HAS_NUMPY if vectorized is None else vectorized
        self.pool_mode = pool_mode
        self.shard_lookup = shard_lookup
        self.shm_plane = shm_plane
        self.delta_routing = delta_routing
        if shm_plane:
            if not HAS_SHM:
                raise ValueError("shm_plane requires numpy and "
                                 "multiprocessing.shared_memory")
            if not shard_lookup:
                raise ValueError("shm_plane requires shard_lookup (it backs "
                                 "the sharded ER phase)")
            if not self.vectorized:
                raise ValueError("shm_plane requires vectorized execution "
                                 "(the plane holds the columnar stores)")
            if pool_mode != POOL_PERSISTENT:
                raise ValueError("shm_plane requires pool_mode="
                                 f"{POOL_PERSISTENT!r} (the workers keep "
                                 "mapped state across batches)")
        self._pool = None
        self._persistent_pool: Optional[PersistentRefinementPool] = None
        self._sharded_pool: Optional[ShardedERPool] = None
        self._shm_pool: Optional[ShmShardedERPool] = None
        self._plane: Optional[ShmPlane] = None
        #: Test hook: run the shm replicas in-process (full protocol, every
        #: pickle round-trip, no process spawns).
        self._shm_inline = False
        self._persistent_ctx = None
        self._shard_params_cache: Optional[
            Tuple[object, Optional[int], bytes]] = None
        self._auto_choice: Optional[str] = None

    # -- resources -----------------------------------------------------------
    def _ensure_pool(self):
        if self._pool is None:
            from concurrent.futures import ProcessPoolExecutor

            self._pool = ProcessPoolExecutor(max_workers=self.max_workers)
        return self._pool

    def _refinement_params(self, ctx) -> dict:
        pruning = ctx.pruning
        return {
            "pivots": ctx.pivots,
            "keywords": pruning.keywords,
            "gamma": pruning.gamma,
            "alpha": pruning.alpha,
            "use_topic": pruning.use_topic,
            "use_similarity": pruning.use_similarity,
            "use_probability": pruning.use_probability,
            "use_instance": pruning.use_instance,
            "vectorized": self.vectorized,
        }

    def _shard_params(self, ctx) -> dict:
        params = self._refinement_params(ctx)
        params["cells_per_dim"] = ctx.grid.cells_per_dim
        params["worker_count"] = self.max_workers
        return params

    def _shard_params_blob(self, ctx) -> bytes:
        """The pickled shard params, cached per (context, worker count).

        The params (pivot table included) are invariant for one operator at
        one worker count; the per-batch sharded path ships them with every
        batch, so only the serialisation is worth hoisting off the hot
        path.  ``worker_count`` is baked into the params, so the cache key
        includes ``max_workers`` — a reconfigured executor must not ship a
        stale shard count.
        """
        cached = self._shard_params_cache
        if (cached is None or cached[0] is not ctx
                or cached[1] != self.max_workers):
            self._shard_params_cache = (ctx, self.max_workers, pickle.dumps(
                self._shard_params(ctx), protocol=pickle.HIGHEST_PROTOCOL))
        return self._shard_params_cache[2]

    def _ensure_persistent_pool(self, ctx) -> PersistentRefinementPool:
        if self._persistent_pool is not None and self._persistent_ctx is not ctx:
            # The executor was handed to a different engine: the workers'
            # pivot table and pruning thresholds are that of the old
            # operator, so tear the pool down and start fresh.
            self._persistent_pool.close()
            self._persistent_pool = None
        if self._persistent_pool is None:
            self._persistent_pool = PersistentRefinementPool(
                workers=self.max_workers,
                params=self._refinement_params(ctx))
            self._persistent_ctx = ctx
        return self._persistent_pool

    def _ensure_sharded_pool(self, ctx) -> ShardedERPool:
        if self._sharded_pool is not None and self._persistent_ctx is not ctx:
            self._sharded_pool.close()
            self._sharded_pool = None
        if self._sharded_pool is None:
            self._sharded_pool = ShardedERPool(
                workers=self.max_workers, params=self._shard_params(ctx))
            self._persistent_ctx = ctx
        return self._sharded_pool

    def _ensure_shm_pool(self, ctx) -> ShmShardedERPool:
        if self._shm_pool is not None and self._persistent_ctx is not ctx:
            # Different operator: its grid maps the old plane's segments.
            self._teardown_shm()
        if self._plane is None:
            self._plane = ShmPlane()
        # No-ops in steady state; rebuild + backfill when the grid changed
        # hands or a prior in-process run left non-arena stores behind.
        ctx.grid.enable_packed_store(arena=self._plane.packed)
        ctx.grid.enable_cell_store(arena=self._plane.cells)
        if self._shm_pool is None:
            pruning = ctx.pruning
            self._shm_pool = ShmShardedERPool(
                workers=self.max_workers,
                params={
                    "schema": ctx.schema,
                    "keywords": pruning.keywords,
                    "gamma": pruning.gamma,
                    "alpha": pruning.alpha,
                    "use_topic": pruning.use_topic,
                    "use_similarity": pruning.use_similarity,
                    "use_probability": pruning.use_probability,
                    "use_instance": pruning.use_instance,
                    "worker_count": self.max_workers,
                },
                plane=self._plane, inline=self._shm_inline)
            self._persistent_ctx = ctx
        return self._shm_pool

    def _teardown_shm(self) -> None:
        """Close the shm pool and unlink the plane, in dependency order:
        localise the grid's stores out of the arenas first (so the operator
        keeps working serially), then stop the workers, then unlink."""
        ctx = self._persistent_ctx
        if ctx is not None and self._plane is not None:
            for store in (ctx.grid.packed_store, ctx.grid.cell_store):
                if store is not None and store.arena is not None:
                    store.localize()
        if self._shm_pool is not None:
            self._shm_pool.close()
            self._shm_pool = None
        if self._plane is not None:
            self._plane.close(unlink=True)
            self._plane = None

    def _resolve_pool_mode(self, ctx, batch_len: int) -> str:
        """The pool mode for the batch at hand (resolves ``auto``).

        ``batch_len`` is the actual number of tuples in this batch — the
        configured ``batch_size`` knob is ignored by callers that chunk
        their own input (e.g. the ingestion driver's adaptive batcher).
        """
        if self.pool_mode != POOL_AUTO:
            return self.pool_mode
        if self._auto_choice != POOL_PERSISTENT:
            # Re-evaluate until the choice upgrades to persistent; after
            # that it sticks (the workers' resident stores are warm).
            self._auto_choice = resolve_auto_pool_mode(batch_len,
                                                       ctx.transport)
            if self._auto_choice == POOL_PERSISTENT and self._pool is not None:
                # Release the warm-up phase's per-batch pool: its worker
                # processes would otherwise sit idle alongside the
                # persistent pool's for the executor's remaining lifetime.
                self._pool.shutdown()
                self._pool = None
        return self._auto_choice

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
        if self._persistent_pool is not None:
            self._persistent_pool.close()
            self._persistent_pool = None
        if self._sharded_pool is not None:
            self._sharded_pool.close()
            self._sharded_pool = None
        self._teardown_shm()
        self._persistent_ctx = None
        # A closed executor may be reused (the controller rebuilds pools
        # through the ordinary ``_ensure_*`` lazy paths); drop every piece
        # of derived state that bakes in the old configuration.
        self._shard_params_cache = None
        self._auto_choice = None

    # -- runtime reconfiguration ---------------------------------------------
    def reconfigure(self, *, max_workers: Optional[int] = None,
                    pool_mode: Optional[str] = None,
                    delta_routing: Optional[bool] = None,
                    batch_size: Optional[int] = None) -> dict:
        """Apply a safe reconfiguration at a quiescent batch boundary.

        Callers (the :class:`~repro.runtime.controller.RuntimeController`,
        tests, operators) invoke this *between* batches — there are no
        in-flight orders then, so resident pools can be torn down and
        lazily re-seeded on the next batch.  Residency self-healing (the
        pools reconcile against ``grid.mutation_count`` in
        ``begin_batch``) guarantees the rebuilt replicas converge on the
        exact live window, so match sets and counters stay bit-identical
        to an executor constructed with the new knobs from the start.

        Only the *elastic* knobs are reconfigurable: ``max_workers``,
        ``pool_mode``, ``delta_routing`` and ``batch_size``.  Structural
        knobs (``shard_lookup``, ``vectorized``, ``shm_plane``) change the
        algorithm shape and stay fixed at construction.  ``None`` leaves a
        knob unchanged.  Returns a ``{knob: (old, new)}`` dict of the
        knobs that actually changed (empty when the call was a no-op).
        """
        if batch_size is not None and batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        if pool_mode is not None:
            if pool_mode not in (POOL_PERSISTENT, POOL_PER_BATCH, POOL_AUTO):
                raise ValueError(
                    f"pool_mode must be {POOL_PERSISTENT!r}, "
                    f"{POOL_PER_BATCH!r} or {POOL_AUTO!r}, got {pool_mode!r}")
            if self.shm_plane and pool_mode != POOL_PERSISTENT:
                raise ValueError("shm_plane requires pool_mode="
                                 f"{POOL_PERSISTENT!r}; tear the executor "
                                 "down instead of downgrading it")
        if delta_routing is not None and not self.shm_plane \
                and delta_routing is False:
            # Harmless (the flag is only read on the shm path) but almost
            # certainly a controller bug — surface it.
            raise ValueError("delta_routing is only meaningful with "
                             "shm_plane")

        changed: dict = {}
        if batch_size is not None and batch_size != self.batch_size:
            changed["batch_size"] = (self.batch_size, batch_size)
            self.batch_size = batch_size
        if delta_routing is not None and delta_routing != self.delta_routing:
            # Read per batch on the shm path; flipping it is free — no
            # pool teardown, the next batch simply routes (or broadcasts).
            changed["delta_routing"] = (self.delta_routing, delta_routing)
            self.delta_routing = delta_routing
        pool_shape_changed = (
            (max_workers is not None and max_workers != self.max_workers)
            or (pool_mode is not None and pool_mode != self.pool_mode))
        if pool_shape_changed:
            if max_workers is not None and max_workers != self.max_workers:
                changed["max_workers"] = (self.max_workers, max_workers)
                self.max_workers = max_workers
            if pool_mode is not None and pool_mode != self.pool_mode:
                changed["pool_mode"] = (self.pool_mode, pool_mode)
                self.pool_mode = pool_mode
            # The worker count is baked into pool processes, shard params
            # and the shm plane's routing; drain everything and let the
            # next batch re-seed lazily under the new shape.  ``close``
            # also resets the auto-mode choice and the params-blob cache.
            self.close()
        return changed

    # -- scheduling ----------------------------------------------------------
    def process_batch(self, pipeline: Pipeline,
                      records: Sequence[Record]) -> List[List[MatchPair]]:
        with pipeline.ctx.begin_batch(len(records)):
            return self._process_batch(pipeline, records)

    def _process_batch(self, pipeline: Pipeline,
                       records: Sequence[Record]) -> List[List[MatchPair]]:
        ctx = pipeline.ctx
        tel = ctx.telemetry
        if ctx.imputer.candidate_cache is None:
            # Cross-record memoisation of cand(s[A_j]) — see CDDImputer.
            ctx.imputer.candidate_cache = {}
        pooled = self.max_workers is not None and (self.max_workers > 1
                                                   or self.shard_lookup)
        sharded = pooled and self.shard_lookup
        if self.vectorized and not sharded:
            # Lookup runs main-side: scan the cells through the columnar
            # aggregate store, and (in-process) gather refinement candidates
            # from the resident packed store.  The sharded path keeps the
            # main grid thin — the worker replicas hold their own stores.
            ctx.grid.enable_cell_store()
            if not pooled:
                ctx.grid.enable_packed_store()
        tasks = [TupleTask(record=record) for record in records]

        # Phase 1: order-free stages over the whole batch.
        with ctx.timer.measure(STAGE_CDD_SELECTION), tel.span("rule_selection"):
            pipeline.rule_selection.run(tasks)
        with ctx.timer.measure(STAGE_IMPUTATION), tel.span("imputation"):
            pipeline.imputation.run(tasks)
            pipeline.synopsis.run(tasks, packed=self.vectorized and not pooled)

        if sharded:
            with ctx.timer.measure(STAGE_ER), tel.span("entity_resolution"):
                if self.shm_plane:
                    self._process_batch_shm(pipeline, tasks)
                else:
                    self._process_batch_sharded(pipeline, tasks)
            return [task.matches for task in tasks]

        with ctx.timer.measure(STAGE_ER), tel.span("entity_resolution"):
            # Phase 2: order-bound maintenance + candidate lookup, with the
            # result-set mutations deferred into an event log.
            events: List[Tuple[int, object]] = []
            evicted_keys: List[SynopsisKey] = []
            with tel.span("maintenance_lookup"):
                for task in tasks:
                    ctx.timestamps_processed += 1
                    evicted = pipeline.maintenance.expire(
                        task.record.source, defer_result_set=True)
                    if evicted is not None:
                        key = (evicted.record.rid, evicted.record.source)
                        events.append((_EVICT, key))
                        evicted_keys.append(key)
                    task.candidates = pipeline.candidates.lookup(task.synopsis)
                    events.append((_EMIT, task))
                    pipeline.maintenance.insert(task.synopsis)

            # Phase 3: pure pair refinement (in-process or pooled).
            with tel.span("refine"):
                if pooled:
                    if self._resolve_pool_mode(
                            ctx, len(records)) == POOL_PERSISTENT:
                        self._evaluate_persistent(pipeline, tasks,
                                                  evicted_keys)
                    else:
                        self._evaluate_pooled(pipeline, tasks)
                else:
                    self._evaluate_in_process(pipeline, tasks)

            # Phase 4: replay result-set mutations in arrival order.
            with tel.span("result_replay"):
                result_set = ctx.result_set
                for kind, payload in events:
                    if kind == _EVICT:
                        result_set.remove_record(*payload)
                    else:
                        for pair in payload.matches:
                            result_set.add(pair)

        return [task.matches for task in tasks]

    # -- in-process refinement (batched Theorem 4.4 tail) ----------------------
    def _evaluate_in_process(self, pipeline: Pipeline,
                             tasks: Sequence[TupleTask]) -> None:
        """Whole-batch evaluation: one bound pass per query, one
        instance-level refinement sweep over the batch's surviving pairs."""
        ctx = pipeline.ctx
        pruning = ctx.pruning
        verdict_lists = evaluate_task_batch(
            [(task.synopsis, task.candidates) for task in tasks],
            keywords=pruning.keywords, gamma=pruning.gamma,
            alpha=pruning.alpha, use_topic=pruning.use_topic,
            use_similarity=pruning.use_similarity,
            use_probability=pruning.use_probability,
            use_instance=pruning.use_instance, stats=pruning.stats,
            vectorized=self.vectorized, store=ctx.grid.packed_store)
        for task, verdicts in zip(tasks, verdict_lists):
            for candidate, (is_match, probability) in zip(task.candidates,
                                                          verdicts):
                if is_match:
                    task.matches.append(
                        pipeline.matching.make_pair(task, candidate,
                                                    probability))

    # -- sharded ER phase (lookup + pruning + refinement worker-side) ----------
    def _process_batch_sharded(self, pipeline: Pipeline,
                               tasks: Sequence[TupleTask]) -> None:
        """Phases 2–4 with the whole ER phase dispatched per grid shard.

        The main process only replays window maintenance (cheap key
        bookkeeping) and builds the arrival-ordered op list; the workers
        replay the same ops against their resident grid replicas and run
        lookup + pruning + refinement for their regions.  Maintenance
        deltas piggyback on the lookup orders — one broadcast message per
        worker per batch, matches + counters back.
        """
        ctx = pipeline.ctx
        tel = ctx.telemetry
        mode = self._resolve_pool_mode(ctx, len(tasks))
        if mode == POOL_PERSISTENT:
            pool = self._ensure_sharded_pool(ctx)
            reconciliation = pool.begin_batch(ctx.grid)
            window_items = None
        else:
            pool = None
            reconciliation = None
            window_items = ctx.grid.synopsis_items()

        events: List[Tuple[int, object]] = []
        task_regions: List[int] = []
        task_evictions: List[List[SynopsisKey]] = []
        with tel.span("maintenance_lookup"):
            for task in tasks:
                ctx.timestamps_processed += 1
                evicted = pipeline.maintenance.expire(task.record.source,
                                                      defer_result_set=True)
                keys: List[SynopsisKey] = []
                if evicted is not None:
                    key = (evicted.record.rid, evicted.record.source)
                    events.append((_EVICT, key))
                    keys.append(key)
                task_evictions.append(keys)
                task_regions.append(ctx.grid.region_of(task.synopsis,
                                                       self.max_workers))
                events.append((_EMIT, task))
                pipeline.maintenance.insert(task.synopsis)

        if pool is not None:
            matches_by_task, stats, counters = pool.evaluate_batch(
                tasks, task_regions, task_evictions, reconciliation,
                grid=ctx.grid, transport=ctx.transport,
                trace=tel.current_trace)
        else:
            matches_by_task, stats, counters = self._evaluate_sharded_per_batch(
                ctx, tasks, task_regions, task_evictions, window_items)
        with tel.span("result_replay"):
            self._merge_shard_results(ctx, tasks, events, matches_by_task,
                                      stats, counters)

    @staticmethod
    def _merge_shard_results(ctx, tasks: Sequence[TupleTask], events,
                             matches_by_task, stats, counters) -> None:
        """Fold worker results back into the context: stats + grid
        counters, match triples rebuilt into :class:`MatchPair` objects,
        then the result-set mutations replayed in arrival order."""
        ctx.pruning.stats.merge(stats)
        ctx.grid.cells_examined += counters[0]
        ctx.grid.tuples_examined += counters[1]
        for index, triples in matches_by_task.items():
            task = tasks[index]
            record = task.record
            for rid, source, probability in triples:
                task.matches.append(MatchPair(
                    left_rid=record.rid, left_source=record.source,
                    right_rid=rid, right_source=source,
                    probability=probability, timestamp=record.timestamp))

        result_set = ctx.result_set
        for kind, payload in events:
            if kind == _EVICT:
                result_set.remove_record(*payload)
            else:
                for pair in payload.matches:
                    result_set.add(pair)

    # -- shm-plane sharded ER phase (workers map the columnar plane) -----------
    def _process_batch_shm(self, pipeline: Pipeline,
                           tasks: Sequence[TupleTask]) -> None:
        """Phases 2–4 against the shared-memory columnar plane.

        The main process is the plane's single writer: the maintenance
        loop below performs every arena write of the batch (evictions and
        insertions mutate the arena-backed packed/cell stores in place)
        while journalling the cell-membership mutations and each row's
        pre-image.  Only after the loop — all writes done — does
        ``evaluate_batch`` bump the epoch and ship the op journal; the
        workers then replay it against the mapped arrays, reconstructing
        every intermediate aggregate from the journal's at-write values.
        """
        ctx = pipeline.ctx
        tel = ctx.telemetry
        grid = ctx.grid
        pool = self._ensure_shm_pool(ctx)
        reset = pool.begin_batch(grid)
        workers = self.max_workers
        journal = GridJournal()
        grid.journal = journal
        events: List[Tuple[int, object]] = []
        ops = []
        routed: dict = {}
        maintenance_scope = tel.span("maintenance_journal")
        maintenance_scope.__enter__()
        try:
            for index, task in enumerate(tasks):
                ctx.timestamps_processed += 1
                evicted = pipeline.maintenance.expire(task.record.source,
                                                      defer_result_set=True)
                pre_evicted = []
                if evicted is not None:
                    key = (evicted.record.rid, evicted.record.source)
                    events.append((_EVICT, key))
                    retired = pool.retire_key(key)
                    if retired is not None:
                        pre_evicted.append(retired)
                pre_entries = journal.take()
                region = grid.region_of(task.synopsis, workers)
                pipeline.maintenance.insert(task.synopsis)
                post_entries = journal.take()
                key = (task.record.rid, task.record.source)
                handle, replaced = pool.register(key, task.synopsis)
                row = grid.packed_store.row_for(task.synopsis)
                ops.append((index, region, key, handle, row, pre_evicted,
                            pre_entries, post_entries,
                            [replaced] if replaced is not None else []))
                if self.delta_routing:
                    # Ship the record only to the shards whose regions its
                    # cells touch; the home cell is always among them, so
                    # the query's own shard is always a target.
                    targets = {region}
                    for coords in grid.record_cells(*key):
                        targets.add(grid.region_of_cell(coords, workers))
                else:
                    targets = range(workers)
                record = task.synopsis.record
                delta = (handle, record.base, record.candidates)
                for worker in targets:
                    routed.setdefault(worker, []).append(delta)
                events.append((_EMIT, task))
            pre_rows = journal.drain_pre()
        finally:
            grid.journal = None
            maintenance_scope.__exit__(None, None, None)
        matches_by_task, stats, counters = pool.evaluate_batch(
            grid, reset, ops, routed, pre_rows, transport=ctx.transport,
            trace=tel.current_trace)
        with tel.span("result_replay"):
            self._merge_shard_results(ctx, tasks, events, matches_by_task,
                                      stats, counters)

    def _evaluate_sharded_per_batch(self, ctx, tasks: Sequence[TupleTask],
                                    task_regions: Sequence[int],
                                    task_evictions: Sequence[List[SynopsisKey]],
                                    window_items):
        """Stateless sharded evaluation: re-ship the window every batch.

        The shipping-cost baseline against the resident ``ShardedERPool``:
        every worker receives the pre-batch window snapshot plus the op
        list, rebuilds a transient grid replica, and evaluates its regions.
        """
        from concurrent.futures import as_completed

        window_rows = [
            (handle, synopsis.record.base, synopsis.record.candidates)
            for handle, (_, synopsis) in enumerate(window_items)
        ]
        base = len(window_rows)
        deltas = []
        ops = []
        for index, task in enumerate(tasks):
            record = task.synopsis.record
            deltas.append((base + index, record.base, record.candidates))
            ops.append((index, task_evictions[index], base + index,
                        task_regions[index]))
        params_blob = self._shard_params_blob(ctx)
        blob = pickle.dumps((window_rows, deltas, ops),
                            protocol=pickle.HIGHEST_PROTOCOL)
        pool = self._ensure_pool()
        trace = ctx.telemetry.current_trace
        want_spans = trace is not None
        futures = {
            pool.submit(evaluate_shard_partition, blob, worker, params_blob,
                        want_spans): worker
            for worker in range(self.max_workers)
        }
        ctx.transport.record_batch(
            self.max_workers * (len(blob) + len(params_blob)),
            synopses=self.max_workers * (len(window_rows) + len(deltas)),
            orders=len(ops))
        merged = PruningStats()
        matches_by_task = {}
        cells_delta = 0
        tuples_delta = 0
        for future in as_completed(futures):
            results, stats, counters, spans = future.result()
            merged.merge(stats)
            if want_spans:
                trace.add_worker_spans("per_batch_shard", futures[future],
                                       spans)
            cells_delta += counters[0]
            tuples_delta += counters[1]
            for task_index, task_matches in results:
                matches_by_task[task_index] = task_matches
        return matches_by_task, merged, (cells_delta, tuples_delta)

    # -- persistent-pool refinement ------------------------------------------
    def _evaluate_persistent(self, pipeline: Pipeline,
                             tasks: Sequence[TupleTask],
                             evicted_keys: Sequence[SynopsisKey]) -> None:
        """Ship synopsis deltas + work orders to the resident-store pool."""
        ctx = pipeline.ctx
        pruning = ctx.pruning
        pool = self._ensure_persistent_pool(ctx)

        task_regions = [
            (index, ctx.grid.region_of(task.synopsis, self.max_workers))
            for index, task in enumerate(tasks) if task.candidates
        ]
        verdicts_by_task, stats = pool.evaluate_batch(
            tasks, task_regions, evicted_keys, transport=ctx.transport,
            trace=ctx.telemetry.current_trace)
        pruning.stats.merge(stats)
        for index, verdicts in verdicts_by_task.items():
            task = tasks[index]
            for candidate, (is_match, probability) in zip(task.candidates,
                                                          verdicts):
                if is_match:
                    task.matches.append(
                        pipeline.matching.make_pair(task, candidate,
                                                    probability))

    # -- per-batch pooled refinement (legacy shipping mode) --------------------
    def _evaluate_pooled(self, pipeline: Pipeline,
                         tasks: Sequence[TupleTask]) -> None:
        """Fan pair refinement out to the process pool, sharded by region."""
        from concurrent.futures import as_completed

        ctx = pipeline.ctx
        pruning = ctx.pruning
        pending = [task for task in tasks if task.candidates]
        if not pending:
            return
        partitions: dict = {}
        for task in pending:
            region = ctx.grid.region_of(task.synopsis, self.max_workers)
            partitions.setdefault(region, []).append(task)

        pool = self._ensure_pool()
        trace = ctx.telemetry.current_trace
        want_spans = trace is not None
        futures = {}
        total_bytes = 0
        total_synopses = 0
        total_orders = 0
        for region, grouped in sorted(partitions.items()):
            items = [(task.synopsis, task.candidates) for task in grouped]
            # Pickled once here (not inside ``submit``) so the shipped bytes
            # are accounted exactly; the worker unpickles in
            # ``evaluate_partition_blob``.
            blob = pickle.dumps(items, protocol=pickle.HIGHEST_PROTOCOL)
            total_bytes += len(blob)
            total_synopses += sum(1 + len(task.candidates)
                                  for task in grouped)
            total_orders += len(grouped)
            future = pool.submit(
                evaluate_partition_blob, blob,
                keywords=pruning.keywords, gamma=pruning.gamma,
                alpha=pruning.alpha, use_topic=pruning.use_topic,
                use_similarity=pruning.use_similarity,
                use_probability=pruning.use_probability,
                use_instance=pruning.use_instance,
                vectorized=self.vectorized, want_spans=want_spans)
            futures[future] = (region, grouped)
        ctx.transport.record_batch(total_bytes, synopses=total_synopses,
                                   orders=total_orders)

        # Merge each partition as soon as it finishes: a slow region no
        # longer blocks the already-completed ones (pair verdicts are
        # order-free; phase 4 replays the result set in arrival order).
        for future in as_completed(futures):
            region, grouped = futures[future]
            verdicts_per_task, partition_stats, spans = future.result()
            pruning.stats.merge(partition_stats)
            if want_spans:
                trace.add_worker_spans("per_batch_refinement", region, spans)
            for task, verdicts in zip(grouped, verdicts_per_task):
                for candidate, (is_match, probability) in zip(task.candidates,
                                                              verdicts):
                    if is_match:
                        task.matches.append(
                            pipeline.matching.make_pair(task, candidate,
                                                        probability))
