"""Self-tuning runtime controller: a sense→decide→act loop between batches.

The executor/ingest knob space is large (``max_workers``, ``pool_mode``,
``delta_routing``, batch policy) and, before this module, frozen at
construction: a configuration sized for a burst wastes workers at trickle
rates and a configuration sized for steady state collapses under skewed
bursts.  The :class:`RuntimeController` closes the loop the telemetry
plane (PR 9) opened:

* **sense** — between batches it reads the live measured signals: the
  recent batch-latency distribution (p95 over a bounded window, read from
  the registry's ``terids_batch_seconds`` sample ring when telemetry is
  enabled, from its own ring otherwise), arrival-queue depth and
  backpressure waits (``IngestStats``), bytes-per-order and the
  routed-delta backfill rate (``TransportStats``), and per-shard
  utilisation skew (the registry's ``terids_pool_stage_seconds``
  families);
* **decide** — hysteresis-banded policies: AIMD worker/shard scaling
  (additive increase under sustained SLO violation with backlog,
  multiplicative decrease when far under the SLO with an empty queue)
  gated by a cool-down, plus an opt-in structural clamp of the worker
  count to the schedulable CPUs; batch-policy retargeting toward the
  latency SLO
  (halve ``max_batch`` when p95 breaches the SLO, double it when latency
  headroom meets a standing backlog); routed↔broadcast delta-mode
  selection keyed on the *measured* backfill rate;
* **act** — every decision goes through the safe reconfiguration hooks:
  :meth:`~repro.runtime.executors.MicroBatchExecutor.reconfigure` (pool
  teardown/re-seed at a quiescent batch boundary — residency self-healing
  makes this bit-identical) and
  :meth:`~repro.ingest.batcher.AdaptiveBatcher.retarget`.

Every decision is recorded three ways: ``terids_controller_*`` metric
families (bound in :func:`repro.obs.telemetry.bind_context_metrics`), a
bounded in-memory decision log (+ ``logging`` lines under
``repro.runtime.controller``), and the JSON-safe state dict riding on
``RuntimeContext.controller_state`` — which checkpoints persist, so a
restored run resumes its cool-downs and decision counters instead of
re-thrashing.

Modes: ``"off"`` (the loop never runs), ``"observe"`` (sense + decide +
log, but never act — a dry run for sizing the bands), ``"active"``
(decisions are applied).  Bit-identity to the golden serial reference is
the invariant in every mode: the controller only moves knobs whose every
setting is already proven bit-identical.
"""

from __future__ import annotations

import logging
import os
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional

from repro.ingest.batcher import BatchPolicy
from repro.runtime.executors import MicroBatchExecutor

logger = logging.getLogger(__name__)


def _effective_cpus() -> int:
    """CPUs this process may actually be scheduled on (cgroup/affinity
    aware — the honest parallelism bound, unlike ``os.cpu_count``)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux platforms
        return os.cpu_count() or 1


#: Controller modes.
MODE_OFF = "off"
MODE_OBSERVE = "observe"
MODE_ACTIVE = "active"
_MODES = (MODE_OFF, MODE_OBSERVE, MODE_ACTIVE)

#: Decision action labels (the ``action`` label of
#: ``terids_controller_decisions_total``).
ACTION_SCALE_UP = "scale_up"
ACTION_SCALE_DOWN = "scale_down"
ACTION_RETARGET_DOWN = "retarget_down"
ACTION_RETARGET_UP = "retarget_up"
ACTION_BROADCAST = "broadcast"
ACTION_ROUTE = "route"


@dataclass(frozen=True)
class ControllerPolicy:
    """The hysteresis bands and bounds of the decision rules.

    All latency comparisons are against ``slo_p95_seconds``: the operator's
    per-batch latency objective.  ``high_band``/``low_band`` scale it into
    the hysteresis corridor — no decision fires while p95 sits between
    ``low_band * slo`` and ``high_band * slo``, which is what keeps the
    controller from flapping on noise.
    """

    #: Target p95 end-to-end batch latency, seconds.
    slo_p95_seconds: float = 0.25
    #: p95 above ``high_band * slo`` = overloaded (scale up / shrink batch).
    high_band: float = 1.0
    #: p95 below ``low_band * slo`` = underloaded (scale down / grow batch).
    low_band: float = 0.4
    #: Recent batches the sensing window covers; no decision fires until
    #: the window is full (and it is refilled after every applied scaling
    #: or retarget, a built-in settle time).
    window: int = 8
    #: Batches between worker-scaling actions (the AIMD cool-down).
    cooldown_batches: int = 4
    #: Worker-count bounds of the AIMD rule.
    min_workers: int = 1
    max_workers: int = 4
    #: Rightsize ``max_workers`` down to the *schedulable* CPU count
    #: (``sched_getaffinity`` — cgroup/affinity aware).  A worker count
    #: frozen for bigger hardware is a structural misfit, not a load
    #: signal: every extra worker is pure pool/IPC overhead, so the clamp
    #: fires without waiting for the latency window (cool-down still
    #: applies).  Off by default — opt-in for deployments whose CPU quota
    #: can differ from the sizing environment.
    clamp_workers_to_cpus: bool = False
    #: Arrival-queue depth treated as a standing backlog / as drained.
    backlog_high: int = 16
    backlog_low: int = 2
    #: ``max_batch`` bounds of the batch-policy retarget rule.
    min_max_batch: int = 8
    max_max_batch: int = 256
    #: Backfills per work order above which routed delta mode is judged to
    #: be thrashing (flip to broadcast), and the probe length after which a
    #: broadcast pool re-tries routed mode (broadcast mode serves no
    #: backfills, so the rate can only be re-measured by flipping back).
    backfill_broadcast_rate: float = 0.5
    broadcast_probe_batches: int = 32
    #: Bounded decision-log length.
    decision_log: int = 256

    def __post_init__(self) -> None:
        if self.slo_p95_seconds <= 0:
            raise ValueError(f"slo_p95_seconds must be positive, "
                             f"got {self.slo_p95_seconds}")
        if not 0 < self.low_band < self.high_band:
            raise ValueError(f"bands must satisfy 0 < low < high, got "
                             f"low={self.low_band} high={self.high_band}")
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")
        if self.cooldown_batches < 0:
            raise ValueError(f"cooldown_batches must be >= 0, "
                             f"got {self.cooldown_batches}")
        if not 1 <= self.min_workers <= self.max_workers:
            raise ValueError(
                f"need 1 <= min_workers <= max_workers, got "
                f"{self.min_workers}..{self.max_workers}")
        if not 1 <= self.min_max_batch <= self.max_max_batch:
            raise ValueError(
                f"need 1 <= min_max_batch <= max_max_batch, got "
                f"{self.min_max_batch}..{self.max_max_batch}")


class RuntimeController:
    """Telemetry-driven adaptation of the executor and ingest knobs.

    Parameters
    ----------
    engine:
        The :class:`~repro.core.engine.TERiDSEngine` to steer.  Its
        executor must be a :class:`MicroBatchExecutor` for worker/routing
        decisions to apply (a serial executor still gets batch-policy
        retargeting and full observability).
    mode:
        ``"off"`` / ``"observe"`` / ``"active"`` — see the module docstring.
    policy:
        The :class:`ControllerPolicy` bands; defaults are sized for the
        bundled workloads.
    batcher:
        The live :class:`~repro.ingest.batcher.AdaptiveBatcher` to
        retarget, when an ingest driver feeds the engine.  ``None``
        disables batch-policy actions (decisions are still logged).

    Call :meth:`after_batch` between batches — manually, or let
    :class:`~repro.ingest.driver.IngestDriver` do it by passing the
    controller as its ``controller=`` argument (a quiescent point: the
    batch's ``process_batch`` has fully returned).
    """

    def __init__(self, engine, mode: str = MODE_OBSERVE,
                 policy: Optional[ControllerPolicy] = None,
                 batcher=None) -> None:
        if mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
        self.engine = engine
        self.ctx = engine.ctx
        self.mode = mode
        self.policy = policy if policy is not None else ControllerPolicy()
        self.batcher = batcher
        self.decision_log: Deque[Dict] = deque(maxlen=self.policy.decision_log)
        self._latencies: Deque[float] = deque(maxlen=self.policy.window)
        #: Stage-seconds / transport / ingest totals at the last sense, for
        #: windowed deltas.
        self._marks: Optional[Dict[str, float]] = None
        #: Windowed (backfills, orders) deltas for the routing rule.
        self._backfill_window: Deque = deque(maxlen=self.policy.window)
        state = self.ctx.controller_state
        restored = dict(state) if state else {}
        executor = engine.executor
        target_workers = restored.get("target_workers")
        if not target_workers:
            target_workers = (executor.max_workers
                              if getattr(executor, "max_workers", None)
                              else 0)
        self.state: Dict = {
            "mode": mode,
            "slo_p95_seconds": self.policy.slo_p95_seconds,
            "evaluations": restored.get("evaluations", 0),
            "decisions": dict(restored.get("decisions", {})),
            "cooldown_remaining": restored.get("cooldown_remaining", 0),
            "target_workers": target_workers,
            "target_max_batch": restored.get(
                "target_max_batch",
                batcher.policy.max_batch if batcher is not None else 0),
            "delta_routing": 1 if getattr(executor, "delta_routing", True)
            else 0,
            "broadcast_age": restored.get("broadcast_age", 0),
            "last_p95_seconds": 0.0,
            "last_decision": restored.get("last_decision"),
        }
        self.ctx.controller_state = self.state

    # -- sense ----------------------------------------------------------------
    def _sense(self) -> Dict[str, float]:
        """Windowed deltas of every measured signal since the last call."""
        ctx = self.ctx
        timer_total = sum(ctx.timer.totals.values())
        transport = ctx.transport
        ingest = ctx.ingest
        marks = self._marks
        signals: Dict[str, float] = {}
        if marks is not None:
            batch_seconds = timer_total - marks["timer_total"]
            orders = transport.orders_shipped - marks["orders"]
            backfills = transport.backfills - marks["backfills"]
            bytes_delta = transport.bytes_shipped - marks["bytes"]
            signals["batch_seconds"] = batch_seconds
            signals["orders"] = orders
            signals["backfills"] = backfills
            signals["bytes_per_order"] = (bytes_delta / orders
                                          if orders > 0 else 0.0)
            signals["backpressure_waits"] = (
                ingest.backpressure_waits - marks["backpressure"])
            self._latencies.append(batch_seconds)
            self._backfill_window.append((backfills, orders))
        self._marks = {
            "timer_total": timer_total,
            "orders": float(transport.orders_shipped),
            "backfills": float(transport.backfills),
            "bytes": float(transport.bytes_shipped),
            "backpressure": float(ingest.backpressure_waits),
        }
        signals["queue_depth"] = float(ingest.queue_depths[-1]
                                       if ingest.queue_depths else 0)
        signals["effective_cpus"] = float(_effective_cpus())
        signals["p95_seconds"] = self._p95()
        signals["formation_p95_seconds"] = ingest.p95_formation_latency()
        signals["shard_skew"] = self._shard_skew()
        return signals

    def _p95(self) -> float:
        """p95 batch latency: the registry's ``terids_batch_seconds`` ring
        when telemetry is live (the executor-measured wall time), the
        controller's own stage-seconds ring otherwise."""
        telemetry = self.ctx.telemetry
        if getattr(telemetry, "enabled", False):
            value = telemetry.batch_seconds.quantile(0.95)
            if value > 0.0:
                return value
        if not self._latencies:
            return 0.0
        ordered = sorted(self._latencies)
        return ordered[int(0.95 * (len(ordered) - 1))]

    def _shard_skew(self) -> float:
        """Max/mean ratio of per-shard pooled wall time (1.0 = balanced,
        0.0 = no pooled signal yet)."""
        telemetry = self.ctx.telemetry
        if not getattr(telemetry, "enabled", False):
            return 0.0
        totals: Dict[str, float] = {}
        family = telemetry.pool_stage_seconds
        for key, child in family._children.items():
            labels = dict(zip(family.labelnames, key))
            shard = labels.get("shard", "")
            totals[shard] = totals.get(shard, 0.0) + child.sum
        if not totals:
            return 0.0
        mean = sum(totals.values()) / len(totals)
        if mean <= 0.0:
            return 0.0
        return max(totals.values()) / mean

    # -- decide + act ---------------------------------------------------------
    def after_batch(self, driver=None, records=None) -> List[Dict]:
        """Run one sense→decide→act evaluation at a batch boundary.

        Signature matches the :class:`~repro.ingest.driver.IngestDriver`
        ``on_batch`` hook so the controller can be wired there directly.
        Returns the decisions taken this evaluation (empty most batches).
        """
        if self.mode == MODE_OFF:
            return []
        self.state["evaluations"] += 1
        signals = self._sense()
        self.state["last_p95_seconds"] = signals["p95_seconds"]
        decisions: List[Dict] = []
        self._decide_worker_clamp(signals, decisions)
        if len(self._latencies) >= self.policy.window:
            self._decide_workers(signals, decisions)
            self._decide_batch_policy(signals, decisions)
        self._decide_delta_routing(signals, decisions)
        cooldown = self.state["cooldown_remaining"]
        if cooldown > 0 and not decisions:
            self.state["cooldown_remaining"] = cooldown - 1
        return decisions

    def _decide_worker_clamp(self, signals: Dict[str, float],
                             decisions: List[Dict]) -> None:
        """Rightsize the worker count to the schedulable CPUs.

        A structural rule, not a load rule: it compares two configuration
        facts (``max_workers`` vs ``sched_getaffinity``), so it fires
        before the latency window is even full — oversubscribed workers on
        a CPU-quota'd box pay pool spin-up and IPC for zero parallelism on
        every single batch, and waiting ``window`` batches to notice only
        prolongs the damage.
        """
        if not self.policy.clamp_workers_to_cpus:
            return
        executor = self.engine.executor
        if not isinstance(executor, MicroBatchExecutor) \
                or executor.max_workers is None:
            return
        if self.state["cooldown_remaining"] > 0:
            return
        workers = executor.max_workers
        target = max(self.policy.min_workers, int(signals["effective_cpus"]))
        if workers <= target:
            return
        record = self._act(
            ACTION_SCALE_DOWN, "max_workers", workers, target,
            reason=(f"workers={workers} exceed effective_cpus="
                    f"{signals['effective_cpus']:.0f}"),
            reconfigure={"max_workers": target})
        decisions.append(record)
        self.state["cooldown_remaining"] = self.policy.cooldown_batches
        if record["applied"]:
            self.state["target_workers"] = target
            self._latencies.clear()

    def _decide_workers(self, signals: Dict[str, float],
                        decisions: List[Dict]) -> None:
        """AIMD worker scaling: +1 under sustained overload, halve when
        idle; gated on the cool-down and the hysteresis corridor."""
        executor = self.engine.executor
        if not isinstance(executor, MicroBatchExecutor) \
                or executor.max_workers is None:
            return
        if self.state["cooldown_remaining"] > 0:
            return
        policy = self.policy
        p95 = signals["p95_seconds"]
        slo = policy.slo_p95_seconds
        workers = executor.max_workers
        ceiling = policy.max_workers
        if policy.clamp_workers_to_cpus:
            # Never scale back above the bound the clamp rule enforces.
            ceiling = min(ceiling, max(policy.min_workers,
                                       int(signals["effective_cpus"])))
        overloaded = (p95 > policy.high_band * slo
                      and (signals["queue_depth"] >= policy.backlog_high
                           or signals.get("backpressure_waits", 0) > 0))
        underloaded = (p95 < policy.low_band * slo
                       and signals["queue_depth"] <= policy.backlog_low)
        if overloaded and workers < ceiling:
            target = workers + 1  # additive increase
        elif underloaded and workers > policy.min_workers:
            target = max(policy.min_workers, workers // 2)  # mult. decrease
        else:
            return
        action = ACTION_SCALE_UP if target > workers else ACTION_SCALE_DOWN
        record = self._act(action, "max_workers", workers, target,
                           reason=(f"p95={p95:.4f}s slo={slo}s "
                                   f"queue={signals['queue_depth']:.0f}"),
                           reconfigure={"max_workers": target})
        decisions.append(record)
        self.state["cooldown_remaining"] = policy.cooldown_batches
        if record["applied"]:
            self.state["target_workers"] = target
            self._latencies.clear()  # settle: re-fill the window post-change

    def _decide_batch_policy(self, signals: Dict[str, float],
                             decisions: List[Dict]) -> None:
        """Retarget ``max_batch`` toward the SLO: halve above it, double it
        when there is latency headroom and a standing backlog."""
        batcher = self.batcher
        if batcher is None:
            return
        policy = self.policy
        p95 = signals["p95_seconds"]
        slo = policy.slo_p95_seconds
        current = batcher.policy.max_batch
        if p95 > policy.high_band * slo and current > policy.min_max_batch:
            target = max(policy.min_max_batch, current // 2)
            action = ACTION_RETARGET_DOWN
        elif (p95 < policy.low_band * slo
              and signals["queue_depth"] >= policy.backlog_high
              and current < policy.max_max_batch):
            target = min(policy.max_max_batch, current * 2)
            action = ACTION_RETARGET_UP
        else:
            return
        new_policy = BatchPolicy(
            max_batch=target, max_delay=batcher.policy.max_delay,
            watermark_stride=batcher.policy.watermark_stride)
        record = self._act(action, "max_batch", current, target,
                           reason=(f"p95={p95:.4f}s slo={slo}s "
                                   f"queue={signals['queue_depth']:.0f}"),
                           retarget=new_policy)
        decisions.append(record)
        if record["applied"]:
            self.state["target_max_batch"] = target
            self._latencies.clear()

    def _decide_delta_routing(self, signals: Dict[str, float],
                              decisions: List[Dict]) -> None:
        """Routed↔broadcast keyed on the measured backfill rate.

        Routed mode thrashing (cross-region queries forcing lazy backfills
        on a large fraction of orders) flips to broadcast; because
        broadcast serves no backfills, the rate cannot be re-measured in
        place — after ``broadcast_probe_batches`` evaluations the
        controller probes routed mode again.
        """
        executor = self.engine.executor
        if not isinstance(executor, MicroBatchExecutor) \
                or not executor.shm_plane:
            return
        policy = self.policy
        if executor.delta_routing:
            backfills = sum(row[0] for row in self._backfill_window)
            orders = sum(row[1] for row in self._backfill_window)
            if orders < policy.window:  # too little signal to judge
                return
            rate = backfills / orders
            if rate > policy.backfill_broadcast_rate:
                record = self._act(
                    ACTION_BROADCAST, "delta_routing", True, False,
                    reason=f"backfill_rate={rate:.3f} over "
                           f"{policy.backfill_broadcast_rate}",
                    reconfigure={"delta_routing": False})
                decisions.append(record)
                if record["applied"]:
                    self.state["delta_routing"] = 0
                    self.state["broadcast_age"] = 0
                    self._backfill_window.clear()
        else:
            self.state["broadcast_age"] += 1
            if self.state["broadcast_age"] >= policy.broadcast_probe_batches:
                record = self._act(
                    ACTION_ROUTE, "delta_routing", False, True,
                    reason=(f"probe after {self.state['broadcast_age']} "
                            "broadcast batches"),
                    reconfigure={"delta_routing": True})
                decisions.append(record)
                if record["applied"]:
                    self.state["delta_routing"] = 1
                    self.state["broadcast_age"] = 0
                    self._backfill_window.clear()

    def _act(self, action: str, knob: str, old, new, reason: str,
             reconfigure: Optional[Dict] = None,
             retarget: Optional[BatchPolicy] = None) -> Dict:
        """Record one decision and (in active mode) apply it."""
        applied = False
        if self.mode == MODE_ACTIVE:
            if reconfigure is not None:
                self.engine.executor.reconfigure(**reconfigure)
            if retarget is not None:
                self.batcher.retarget(retarget)
            applied = True
        record = {
            "batch_seq": self.ctx.batch_seq,
            "action": action,
            "knob": knob,
            "from": old,
            "to": new,
            "reason": reason,
            "applied": applied,
        }
        self.decision_log.append(record)
        counts = self.state["decisions"]
        counts[action] = counts.get(action, 0) + 1
        self.state["last_decision"] = (f"{action} {knob} {old}->{new} "
                                       f"({reason})")
        logger.info("controller[%s] batch=%d %s %s %s -> %s (%s)%s",
                    self.mode, self.ctx.batch_seq, action, knob, old, new,
                    reason, "" if applied else " [not applied]")
        return record

    # -- checkpoint glue ------------------------------------------------------
    def detach(self) -> None:
        """Unhook from the context (the state dict stays for checkpoints)."""
        if self.ctx.controller_state is self.state:
            self.ctx.controller_state = dict(self.state)
