"""Cached, batch-friendly candidate-pair evaluation.

The refinement step (Theorem 4.4 / Equation (2)) dominates the online cost:
for every surviving candidate pair it enumerates instance pairs, and for
every instance pair the seed engine re-derives the instance's token sets and
topic flag from scratch.  A tuple stays in its window for ``w`` arrivals and
is evaluated against many queries, so that per-instance work is recomputed
hundreds of times.

This module memoises an :class:`InstanceProfile` per instance — existence
probability, per-attribute token sets in schema order, topic flag — directly
on the :class:`~repro.core.pruning.RecordSynopsis`, and re-implements the
exact refinement loops over the cached profiles.  Every floating-point
accumulation replicates the seed's operation order, so verdicts and
probabilities are bit-identical to
:func:`repro.core.matching.ter_ids_probability_with_cutoff` /
:func:`repro.core.matching.ter_ids_probability`; only the redundant work is
gone.

The module-level :func:`evaluate_partition` is the unit of work the
micro-batch executor ships to a ``concurrent.futures`` process pool when
batch partitions are fanned out by ER-grid region.
"""

from __future__ import annotations

import pickle
from time import perf_counter
from typing import FrozenSet, List, Optional, Sequence, Tuple

from repro.core.pruning import (
    HAS_NUMPY,
    PackedStore,
    PruningStats,
    RecordSynopsis,
    batch_prune,
    probability_prune,
    similarity_prune,
    topic_keyword_prune,
)
from repro.core.similarity import jaccard_similarity

#: Attribute under which profiles are cached on a synopsis.  The cache is
#: keyed by the keyword set so a synopsis shared between differently
#: configured operators can never leak a stale topic flag.
_PROFILE_ATTR = "_runtime_instance_profiles"

#: One cached instance: (probability, per-attribute token sets, topic flag).
InstanceProfile = Tuple[float, Tuple[frozenset, ...], bool]

#: Attribute under which the descending-probability profile order is cached.
_SORTED_PROFILE_ATTR = "_runtime_sorted_profiles"


def instance_profiles(synopsis: RecordSynopsis,
                      keywords: FrozenSet[str]) -> List[InstanceProfile]:
    """Per-instance cached profiles of one synopsis (built lazily once)."""
    cached = getattr(synopsis, _PROFILE_ATTR, None)
    if cached is not None and cached[0] == keywords:
        return cached[1]
    schema = synopsis.record.schema
    profiles: List[InstanceProfile] = []
    for instance in synopsis.record.instances():
        record = instance.record
        tokens = tuple(record.tokens(name) for name in schema)
        if keywords:
            union: set = set()
            for token_set in tokens:
                union |= token_set
            has_topic = any(keyword in union for keyword in keywords)
        else:
            has_topic = False
        profiles.append((instance.probability, tokens, has_topic))
    setattr(synopsis, _PROFILE_ATTR, (keywords, profiles))
    return profiles


def sorted_instance_profiles(synopsis: RecordSynopsis,
                             keywords: FrozenSet[str]) -> List[InstanceProfile]:
    """Descending-probability profiles of one synopsis, cached once.

    ``cutoff_probability`` visits instances in descending probability; a
    tuple is refined against many queries during its window residency, so
    the sort is hoisted out of the per-pair path.  Sorting is deterministic
    (stable sort over the same enumeration), so the cached order is exactly
    what the per-pair sort would produce — verdicts stay bit-identical.
    """
    cached = getattr(synopsis, _SORTED_PROFILE_ATTR, None)
    if cached is not None and cached[0] == keywords:
        return cached[1]
    profiles = sorted(instance_profiles(synopsis, keywords),
                      key=lambda profile: -profile[0])
    setattr(synopsis, _SORTED_PROFILE_ATTR, (keywords, profiles))
    return profiles


def _profile_pair_matches(left: InstanceProfile, right: InstanceProfile,
                          has_keywords: bool, gamma: float) -> bool:
    """χ(...) over cached profiles; replicates ``instance_pair_matches``."""
    if has_keywords and not (left[2] or right[2]):
        return False
    left_tokens = left[1]
    right_tokens = right[1]
    similarity = 0.0
    for index in range(len(left_tokens)):
        similarity += jaccard_similarity(left_tokens[index], right_tokens[index])
    return similarity > gamma


def cutoff_probability(lefts: Sequence[InstanceProfile],
                       rights: Sequence[InstanceProfile],
                       has_keywords: bool, gamma: float,
                       alpha: float) -> Tuple[float, bool, int]:
    """Theorem 4.4 early-terminating Eq. (2) over cached profiles.

    Bit-identical to ``ter_ids_probability_with_cutoff``: same
    descending-probability visit order (stable sort over the same instance
    enumeration), same accumulation order, same bounds.
    """
    return cutoff_probability_sorted(
        sorted(lefts, key=lambda profile: -profile[0]),
        sorted(rights, key=lambda profile: -profile[0]),
        has_keywords, gamma, alpha)


def cutoff_probability_sorted(lefts: Sequence[InstanceProfile],
                              rights: Sequence[InstanceProfile],
                              has_keywords: bool, gamma: float,
                              alpha: float) -> Tuple[float, bool, int]:
    """:func:`cutoff_probability` over already-sorted profile lists."""
    matched_mass = 0.0
    explored_mass = 0.0
    pairs_checked = 0
    for left in lefts:
        left_probability = left[0]
        for right in rights:
            pair_mass = left_probability * right[0]
            if _profile_pair_matches(left, right, has_keywords, gamma):
                matched_mass += pair_mass
            explored_mass += pair_mass
            pairs_checked += 1
            if matched_mass > alpha:
                return matched_mass, True, pairs_checked
            upper_bound = matched_mass + max(0.0, 1.0 - explored_mass)
            if upper_bound <= alpha:
                return upper_bound, False, pairs_checked
    return matched_mass, matched_mass > alpha, pairs_checked


def exact_probability(lefts: Sequence[InstanceProfile],
                      rights: Sequence[InstanceProfile],
                      has_keywords: bool, gamma: float) -> float:
    """Exact Eq. (2) over cached profiles (``ter_ids_probability`` twin)."""
    total = 0.0
    for left in lefts:
        left_probability = left[0]
        for right in rights:
            if _profile_pair_matches(left, right, has_keywords, gamma):
                total += left_probability * right[0]
    return total


def refine_pair_cached(left: RecordSynopsis, right: RecordSynopsis,
                       keywords: FrozenSet[str], gamma: float, alpha: float,
                       use_instance: bool,
                       stats: PruningStats) -> Tuple[bool, float]:
    """Instance-level refinement (Theorem 4.4 / Eq. (2)) of one pair.

    The tail of the cascade shared by the scalar per-pair path and the
    vectorized kernel: pairs reaching it have survived the three bound
    strategies, so only the exact (cutoff) probability and the refinement
    counters remain.
    """
    has_keywords = bool(keywords)
    if use_instance:
        # The cutoff loop visits instances in descending probability, so it
        # reads the cached pre-sorted order (the exact list the per-pair
        # sort would rebuild).
        left_profiles = sorted_instance_profiles(left, keywords)
        right_profiles = sorted_instance_profiles(right, keywords)
        probability, is_match, pairs_checked = cutoff_probability_sorted(
            left_profiles, right_profiles, has_keywords, gamma, alpha)
        total_pairs = len(left_profiles) * len(right_profiles)
        if not is_match and pairs_checked < total_pairs:
            stats.pruned_by_instance += 1
            return False, probability
    else:
        # The exact sum accumulates in enumeration order — keep it.
        probability = exact_probability(instance_profiles(left, keywords),
                                        instance_profiles(right, keywords),
                                        has_keywords, gamma)
        is_match = probability > alpha

    if is_match:
        stats.refined_matches += 1
    else:
        stats.refined_non_matches += 1
    return is_match, probability


def evaluate_pair_cached(left: RecordSynopsis, right: RecordSynopsis,
                         keywords: FrozenSet[str], gamma: float, alpha: float,
                         use_topic: bool, use_similarity: bool,
                         use_probability: bool, use_instance: bool,
                         stats: PruningStats) -> Tuple[bool, float]:
    """Profile-cached twin of ``PruningPipeline.evaluate_pair``.

    Applies the four strategies in the paper's order with identical
    counters; the refinement runs over the cached instance profiles instead
    of re-deriving token sets per instance pair.
    """
    stats.pairs_considered += 1

    if use_topic and topic_keyword_prune(left, right, keywords):
        stats.pruned_by_topic += 1
        return False, 0.0

    if use_similarity and similarity_prune(left, right, gamma):
        stats.pruned_by_similarity += 1
        return False, 0.0

    if use_probability and probability_prune(left, right, gamma, alpha):
        stats.pruned_by_probability += 1
        return False, 0.0

    return refine_pair_cached(left, right, keywords, gamma, alpha,
                              use_instance, stats)


def evaluate_candidates(query: RecordSynopsis,
                        candidates: Sequence[RecordSynopsis],
                        keywords: FrozenSet[str], gamma: float, alpha: float,
                        use_topic: bool, use_similarity: bool,
                        use_probability: bool, use_instance: bool,
                        stats: PruningStats, vectorized: bool = True,
                        store: Optional[PackedStore] = None,
                        ) -> List[Tuple[bool, float]]:
    """Verdicts of one query against its whole candidate list (in order).

    With ``vectorized`` (and numpy available) the three bound strategies run
    through :func:`~repro.core.pruning.batch_prune` — a handful of columnar
    array operations over the packed synopses, gathered from ``store`` when
    the candidates are resident — and only the surviving pairs fall through
    to the scalar instance-level refinement.  Verdicts, probabilities and
    every counter are identical to the per-pair scalar cascade; the
    ``vectorized=False`` path (also the automatic numpy-less fallback) *is*
    that scalar cascade.
    """
    if not candidates:
        return []
    if not (vectorized and HAS_NUMPY):
        return [
            evaluate_pair_cached(
                query, candidate, keywords=keywords, gamma=gamma, alpha=alpha,
                use_topic=use_topic, use_similarity=use_similarity,
                use_probability=use_probability, use_instance=use_instance,
                stats=stats)
            for candidate in candidates
        ]
    verdicts, survivors = _vectorized_prune_pass(
        query, candidates, keywords=keywords, gamma=gamma, alpha=alpha,
        use_topic=use_topic, use_similarity=use_similarity,
        use_probability=use_probability, stats=stats, store=store)
    for position in survivors:
        verdicts[position] = refine_pair_cached(
            query, candidates[position], keywords, gamma, alpha,
            use_instance, stats)
    return verdicts


def _vectorized_prune_pass(query: RecordSynopsis,
                           candidates: Sequence[RecordSynopsis],
                           keywords: FrozenSet[str], gamma: float,
                           alpha: float, use_topic: bool,
                           use_similarity: bool, use_probability: bool,
                           stats: PruningStats,
                           store: Optional[PackedStore],
                           ) -> Tuple[List[Tuple[bool, float]], List[int]]:
    """The three bound strategies + counter accounting for one query.

    The single authority for how the vectorized kernel's results map onto
    the cascade's counters (shared by :func:`evaluate_candidates` and
    :func:`evaluate_task_batch`, which only schedule the refinement tail
    differently).  Returns the default-pruned verdict list and the
    ascending candidate positions that fall through to refinement.
    """
    alive, pruned_topic, pruned_similarity, pruned_probability = batch_prune(
        query, candidates, keywords=keywords, gamma=gamma, alpha=alpha,
        use_topic=use_topic, use_similarity=use_similarity,
        use_probability=use_probability, store=store)
    stats.pairs_considered += len(candidates)
    stats.pruned_by_topic += pruned_topic
    stats.pruned_by_similarity += pruned_similarity
    stats.pruned_by_probability += pruned_probability
    verdicts: List[Tuple[bool, float]] = [(False, 0.0)] * len(candidates)
    return verdicts, [int(index) for index in alive.nonzero()[0]]


def evaluate_task_batch(items: Sequence[Tuple[RecordSynopsis,
                                              Sequence[RecordSynopsis]]],
                        keywords: FrozenSet[str], gamma: float, alpha: float,
                        use_topic: bool, use_similarity: bool,
                        use_probability: bool, use_instance: bool,
                        stats: PruningStats, vectorized: bool = True,
                        store: Optional[PackedStore] = None,
                        ) -> List[List[Tuple[bool, float]]]:
    """Verdicts for a whole micro-batch of ``(query, candidates)`` items.

    Two passes instead of per-query interleaving: first the three bound
    strategies run for every item (through the vectorized kernel when
    available), then the instance-level refinement (Theorem 4.4) sweeps
    *all* surviving pairs of the batch at once over the cached pre-sorted
    profiles.  Verdicts, probabilities and counters are identical to
    calling :func:`evaluate_candidates` item by item — the per-pair work is
    a pure function of the two synopses, only the schedule changes.
    """
    if not (vectorized and HAS_NUMPY):
        return [
            evaluate_candidates(
                query, candidates, keywords=keywords, gamma=gamma,
                alpha=alpha, use_topic=use_topic,
                use_similarity=use_similarity,
                use_probability=use_probability, use_instance=use_instance,
                stats=stats, vectorized=False)
            for query, candidates in items
        ]
    verdicts_per_item: List[List[Tuple[bool, float]]] = []
    survivors: List[Tuple[int, int, RecordSynopsis, RecordSynopsis]] = []
    for item_index, (query, candidates) in enumerate(items):
        if not candidates:
            verdicts_per_item.append([])
            continue
        verdicts, positions = _vectorized_prune_pass(
            query, candidates, keywords=keywords, gamma=gamma, alpha=alpha,
            use_topic=use_topic, use_similarity=use_similarity,
            use_probability=use_probability, stats=stats, store=store)
        verdicts_per_item.append(verdicts)
        for position in positions:
            survivors.append((item_index, position, query,
                              candidates[position]))
    for item_index, position, query, candidate in survivors:
        verdicts_per_item[item_index][position] = refine_pair_cached(
            query, candidate, keywords, gamma, alpha, use_instance, stats)
    return verdicts_per_item


# ---------------------------------------------------------------------------
# Process-pool partition worker
# ---------------------------------------------------------------------------
#: One shippable unit: (query synopsis, its candidate synopses).
PartitionItem = Tuple[RecordSynopsis, List[RecordSynopsis]]


def evaluate_partition(items: Sequence[PartitionItem],
                       keywords: FrozenSet[str], gamma: float, alpha: float,
                       use_topic: bool, use_similarity: bool,
                       use_probability: bool, use_instance: bool,
                       vectorized: bool = False, want_spans: bool = False,
                       ) -> Tuple[List[List[Tuple[bool, float]]], PruningStats,
                                  Optional[List[Tuple[str, float, float]]]]:
    """Evaluate one grid-region partition of a micro-batch.

    Runs in a worker process; returns, per item, the ``(is_match,
    probability)`` verdict of each candidate (in candidate order), the
    pruning counters accumulated by the partition (which the executor
    merges back into the shared :class:`PruningStats`), and — when
    ``want_spans`` — ``(name, rel_start, duration)`` timing rows relative
    to this call's entry, which the parent re-anchors under the live batch
    trace (worker clocks are unsynchronised, only the relative layout
    ships).  ``spans`` is ``None`` when not requested.
    """
    base = perf_counter() if want_spans else 0.0
    stats = PruningStats()
    results: List[List[Tuple[bool, float]]] = []
    for query, candidates in items:
        results.append(evaluate_candidates(
            query, candidates, keywords=keywords, gamma=gamma, alpha=alpha,
            use_topic=use_topic, use_similarity=use_similarity,
            use_probability=use_probability, use_instance=use_instance,
            stats=stats, vectorized=vectorized))
    spans = ([("refine", 0.0, perf_counter() - base)]
             if want_spans else None)
    return results, stats, spans


def evaluate_partition_blob(blob: bytes, **kwargs
                            ) -> Tuple[List[List[Tuple[bool, float]]],
                                       PruningStats,
                                       Optional[List[Tuple[str, float,
                                                           float]]]]:
    """:func:`evaluate_partition` over a pre-pickled item list.

    The per-batch pool path pickles each partition exactly once in the
    parent (so the executor can account the bytes it ships) and hands the
    blob through; the worker deserialises here.  With ``want_spans`` the
    deserialisation is timed as its own ``unpickle`` row ahead of the
    evaluation rows.
    """
    if not kwargs.get("want_spans"):
        return evaluate_partition(pickle.loads(blob), **kwargs)
    base = perf_counter()
    items = pickle.loads(blob)
    unpickled = perf_counter() - base
    results, stats, spans = evaluate_partition(items, **kwargs)
    spans = [("unpickle", 0.0, unpickled)] + [
        (name, start + unpickled, duration)
        for name, start, duration in spans]
    return results, stats, spans
