"""Query-time (on-demand) entity resolution over the live window.

Eager TER-iDS resolves every *arriving* tuple against the window; nothing
answers the inverse question — "what is entity X's resolved cluster right
now?" — which is the read path an interactive service tier needs.
Following the query-time ER formulation of Bhattacharya & Getoor, the
:class:`QueryResolver` resolves *lazily around the named query*: it seeds a
frontier from the query record's grid synopsis, retrieves each frontier
ring's candidates through :meth:`~repro.indexes.er_grid.ERGrid.candidate_synopses`
(cell-level Theorems 4.1 / Lemma 4.2), evaluates the ring with the batched
pruning cascade + Theorem 4.4 refinement of :mod:`repro.runtime.evaluation`,
and expands collectively — matched neighbours join the frontier — until a
fixpoint.

**Equivalence to eager resolution.**  A pair of in-window records from two
different streams is in the maintained result set ``ES`` iff the pure
pairwise cascade calls it a match: the pair was evaluated when the later of
the two arrived (the earlier one was already in-window, and both still
are), and pairs only leave ``ES`` when an endpoint leaves the window.  The
resolver evaluates exactly that cascade over exactly those pairs — each
oriented as the eager path saw it, ``(later arrival, earlier arrival)``, so
probabilities accumulate in the same order — which makes the returned
cluster the connected component of the query record under the eager match
edges: bit-identical to the transitive closure of ``ES`` restricted to the
query's component (pinned by ``tests/test_query_time.py`` across the
serial, sharded and shm-plane configurations).

**Result cache.**  Clusters land in an LRU cache keyed by ``(rid, source,
topic signature, gamma)``.  Each entry records the grid *regions* it
depends on — the cells its members touch plus every lattice cell within the
match margin ``d − γ`` of a member's rectangle (a new record can only match
a member if one of its cells lands inside that margin, by the cell-level
distance bound).  Window maintenance (insert, count-based expiry,
event-time retraction, checkpoint restore) notifies the resolver through
:meth:`~repro.indexes.er_grid.ERGrid.add_maintenance_listener` with the
touched cell coordinates, and only intersecting entries are dropped — so
steady-state repeat queries are near-free while a stale cluster is never
served.  The cache itself is scratch: checkpoints carry only the
:class:`~repro.runtime.context.QueryStats` counters, and a restore clears
every entry.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from time import perf_counter
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.core.matching import MatchPair, normalise_keywords
from repro.core.pruning import HAS_NUMPY, PruningStats, RecordSynopsis
from repro.runtime.context import RuntimeContext
from repro.runtime.evaluation import evaluate_task_batch

#: ``(rid, source)`` identity of one in-window record.
RecordKey = Tuple[str, str]

#: One cache key: record identity + topic signature + match threshold.
CacheKey = Tuple[str, str, FrozenSet[str], float]


@dataclass(frozen=True)
class ResolvedCluster:
    """The resolved entity cluster of one query record, at query time.

    ``members`` are the ``(source, rid)`` endpoints of the transitive
    closure (always including the query record itself — a record with no
    match is a singleton cluster); ``pairs`` are the closure's match edges,
    each bit-identical (probability, timestamp, orientation) to the pair
    the eager path maintains in the entity result set.
    """

    rid: str
    source: str
    topic: FrozenSet[str]
    gamma: float
    members: Tuple[Tuple[str, str], ...]
    pairs: Tuple[MatchPair, ...]

    def __len__(self) -> int:
        return len(self.members)

    def contains(self, rid: str, source: str) -> bool:
        return (source, rid) in self.members


class _CacheEntry:
    """One cached cluster + the grid regions that can invalidate it."""

    __slots__ = ("cluster", "regions")

    def __init__(self, cluster: ResolvedCluster,
                 regions: Optional[FrozenSet[Tuple[int, ...]]]) -> None:
        self.cluster = cluster
        #: ``None`` marks a *global* entry (lattice too large to enumerate):
        #: any grid mutation invalidates it.
        self.regions = regions


class QueryResolver:
    """On-demand collective resolution with a region-invalidated LRU cache.

    Runs main-side against the live grid whatever executor drives the
    eager path — the serial reference, the vectorized micro-batch executor,
    the sharded lookup pool (whose main grid is thin: no packed/cell
    stores) and the shm-plane all leave the main process a complete logical
    grid, which is all the resolver reads.

    Parameters
    ----------
    ctx:
        The runtime context of the engine whose window is queried.
    cache_size:
        LRU bound of the result cache (entries, not bytes).
    """

    #: Above this lattice size the exact within-margin region set is not
    #: enumerated; entries degrade to invalidate-on-any-mutation.
    LATTICE_CAP = 4096

    def __init__(self, ctx: RuntimeContext, cache_size: int = 128) -> None:
        if cache_size < 1:
            raise ValueError(f"cache_size must be >= 1, got {cache_size}")
        self.ctx = ctx
        self.cache_size = cache_size
        self._cache: "OrderedDict[CacheKey, _CacheEntry]" = OrderedDict()
        self._by_cell: Dict[Tuple[int, ...], Set[CacheKey]] = {}
        self._global_keys: Set[CacheKey] = set()
        ctx.grid.add_maintenance_listener(self._on_grid_mutation)

    # -- public API ----------------------------------------------------------
    def resolve(self, rid: str, source: str,
                topic: Optional[FrozenSet[str]] = None,
                gamma: Optional[float] = None) -> ResolvedCluster:
        """Resolved cluster of one in-window record, expanding collectively.

        ``topic`` / ``gamma`` default to the operator configuration — with
        the defaults the cluster equals the eager transitive closure; a
        caller may narrow a lookup to a different topic keyword set or a
        stricter similarity threshold, which re-runs the same cascade under
        those parameters (cached separately per signature).

        Raises :class:`KeyError` when the record is not in the live window.
        """
        ctx = self.ctx
        pruning = ctx.pruning
        keywords = (pruning.keywords if topic is None
                    else normalise_keywords(topic))
        gamma_value = pruning.gamma if gamma is None else float(gamma)
        if not ctx.grid.contains(rid, source):
            raise KeyError(f"({rid!r}, {source!r}) is not in the live window")
        tel = ctx.telemetry
        start = perf_counter()
        ctx.query.resolves += 1
        cache_key: CacheKey = (rid, source, keywords, gamma_value)
        entry = self._cache.get(cache_key)
        if entry is not None:
            ctx.query.cache_hits += 1
            self._cache.move_to_end(cache_key)
            tel.observe_resolve(perf_counter() - start, cached=True)
            return entry.cluster
        ctx.query.cache_misses += 1
        with tel.span("resolve"):
            cluster, member_synopses = self._expand(
                (rid, source), keywords, gamma_value)
        self._store(cache_key, cluster, member_synopses, gamma_value)
        tel.observe_resolve(perf_counter() - start, cached=False)
        return cluster

    def resolve_many(self, entities,
                     topic: Optional[FrozenSet[str]] = None,
                     gamma: Optional[float] = None) -> List[ResolvedCluster]:
        """Resolve several in-window records in one collective expansion.

        ``entities`` is a sequence of ``(rid, source)`` pairs; the result
        list is positionally aligned with it.  Cache hits are served
        directly; every miss joins ONE shared frontier — the fixpoint loop
        seeds all of them at once, so overlapping neighbourhoods are
        expanded once, each candidate ring is evaluated in one batched
        cascade across all queries, and a pair of records is never
        evaluated twice however many queries reach it.  Per-seed clusters
        are then read off the connected components of the shared match
        edges, and each is cached under its normal per-seed key — so every
        returned cluster is bit-identical to what :meth:`resolve` would
        have returned for that entity alone.

        Raises :class:`KeyError` when any named record is not in the live
        window (before any expansion work is done).
        """
        ctx = self.ctx
        pruning = ctx.pruning
        keywords = (pruning.keywords if topic is None
                    else normalise_keywords(topic))
        gamma_value = pruning.gamma if gamma is None else float(gamma)
        keys: List[RecordKey] = []
        for rid, source in entities:
            if not ctx.grid.contains(rid, source):
                raise KeyError(
                    f"({rid!r}, {source!r}) is not in the live window")
            keys.append((rid, source))
        tel = ctx.telemetry
        start = perf_counter()
        resolved: Dict[RecordKey, ResolvedCluster] = {}
        misses: List[RecordKey] = []
        for key in keys:
            if key in resolved or key in misses:
                continue  # duplicate input entity: one expansion suffices
            ctx.query.resolves += 1
            cache_key: CacheKey = (key[0], key[1], keywords, gamma_value)
            entry = self._cache.get(cache_key)
            if entry is not None:
                ctx.query.cache_hits += 1
                self._cache.move_to_end(cache_key)
                tel.observe_resolve(perf_counter() - start, cached=True)
                resolved[key] = entry.cluster
            else:
                ctx.query.cache_misses += 1
                misses.append(key)
        if misses:
            with tel.span("resolve"):
                members, edges = self._collect(misses, keywords, gamma_value)
            components = self._components(members, edges)
            elapsed = perf_counter() - start
            for seed in misses:
                component = components[seed]
                cluster = self._component_cluster(
                    seed, component, edges, keywords, gamma_value)
                member_synopses = {key: members[key] for key in component}
                self._store((seed[0], seed[1], keywords, gamma_value),
                            cluster, member_synopses, gamma_value)
                resolved[seed] = cluster
                tel.observe_resolve(elapsed, cached=False)
        return [resolved[key] for key in keys]

    def clear(self) -> None:
        """Drop every cached cluster (counted as invalidations)."""
        self.ctx.query.cache_invalidations += len(self._cache)
        self._cache.clear()
        self._by_cell.clear()
        self._global_keys.clear()

    def __len__(self) -> int:
        return len(self._cache)

    # -- collective expansion ------------------------------------------------
    def _expand(self, seed: RecordKey, keywords: FrozenSet[str],
                gamma: float) -> Tuple[ResolvedCluster,
                                       Dict[RecordKey, RecordSynopsis]]:
        """Frontier fixpoint around ``seed``; returns cluster + member map."""
        members, edges = self._collect([seed], keywords, gamma)
        # A single-seed expansion only admits members through match edges,
        # so every member is in the seed's component already.
        cluster = self._component_cluster(seed, set(members), edges,
                                          keywords, gamma)
        return cluster, members

    def _collect(self, seeds: List[RecordKey], keywords: FrozenSet[str],
                 gamma: float) -> Tuple[Dict[RecordKey, RecordSynopsis],
                                        Dict[Tuple, MatchPair]]:
        """Shared frontier fixpoint around all ``seeds``.

        Returns the member-synopsis map (the union of every seed's
        transitive closure) and the match edges found; each candidate pair
        is evaluated exactly once across all seeds, in the orientation the
        eager path saw it.
        """
        ctx = self.ctx
        grid = ctx.grid
        pruning = ctx.pruning
        # Grid insertion order is window-arrival order, which recovers the
        # orientation the eager path evaluated each pair under: the later
        # arrival was the query side.
        arrival = {key: index
                   for index, (key, _) in enumerate(grid.synopsis_items())}
        members: Dict[RecordKey, RecordSynopsis] = {
            seed: grid.get_synopsis(*seed) for seed in seeds}
        edges: Dict[Tuple, MatchPair] = {}
        evaluated: Set[Tuple[RecordKey, RecordKey]] = set()
        scratch = PruningStats()
        ring: List[RecordKey] = list(members)
        # Interactive lookups must not perturb the Figure-4 style counters
        # the goldens and checkpoints pin for the eager path.
        saved = (grid.cells_examined, grid.tuples_examined)
        try:
            while ring:
                items: List[Tuple[RecordSynopsis,
                                  List[RecordSynopsis]]] = []
                later_groups: "OrderedDict[RecordKey, Tuple[RecordSynopsis, List[RecordSynopsis]]]" = OrderedDict()
                for key in ring:
                    ctx.query.frontier_expansions += 1
                    query = members[key]
                    candidates = grid.candidate_synopses(
                        query, gamma=gamma, keywords=frozenset(),
                        exclude_source=query.record.source)
                    earlier: List[RecordSynopsis] = []
                    for candidate in candidates:
                        ckey = (candidate.record.rid, candidate.record.source)
                        pair_key = ((key, ckey) if key <= ckey
                                    else (ckey, key))
                        if pair_key in evaluated:
                            continue
                        evaluated.add(pair_key)
                        if arrival[ckey] < arrival[key]:
                            earlier.append(candidate)
                        else:
                            # The candidate arrived after this frontier
                            # record, so the eager path evaluated the pair
                            # with the *candidate* as query.
                            group = later_groups.get(ckey)
                            if group is None:
                                group = (candidate, [])
                                later_groups[ckey] = group
                            group[1].append(query)
                    if earlier:
                        items.append((query, earlier))
                items.extend(later_groups.values())
                if not items:
                    break
                verdicts = evaluate_task_batch(
                    items, keywords=keywords, gamma=gamma,
                    alpha=pruning.alpha, use_topic=pruning.use_topic,
                    use_similarity=pruning.use_similarity,
                    use_probability=pruning.use_probability,
                    use_instance=pruning.use_instance, stats=scratch,
                    vectorized=HAS_NUMPY, store=grid.packed_store)
                ring = []
                for (query, candidates), item_verdicts in zip(items,
                                                              verdicts):
                    for candidate, (is_match, probability) in zip(
                            candidates, item_verdicts):
                        if not is_match:
                            continue
                        pair = MatchPair(
                            left_rid=query.record.rid,
                            left_source=query.record.source,
                            right_rid=candidate.record.rid,
                            right_source=candidate.record.source,
                            probability=probability,
                            timestamp=query.record.timestamp)
                        edges[pair.key()] = pair
                        for synopsis in (query, candidate):
                            endpoint = (synopsis.record.rid,
                                        synopsis.record.source)
                            if endpoint not in members:
                                members[endpoint] = synopsis
                                ring.append(endpoint)
        finally:
            grid.cells_examined, grid.tuples_examined = saved
        return members, edges

    @staticmethod
    def _components(members: Dict[RecordKey, RecordSynopsis],
                    edges: Dict[Tuple, MatchPair]) -> Dict[RecordKey,
                                                           Set[RecordKey]]:
        """Connected components of the match edges over ``members``."""
        parent: Dict[RecordKey, RecordKey] = {key: key for key in members}

        def find(key: RecordKey) -> RecordKey:
            root = key
            while parent[root] != root:
                root = parent[root]
            while parent[key] != root:  # path compression
                parent[key], key = root, parent[key]
            return root

        for pair in edges.values():
            left = (pair.left_rid, pair.left_source)
            right = (pair.right_rid, pair.right_source)
            parent[find(left)] = find(right)
        groups: Dict[RecordKey, Set[RecordKey]] = {}
        for key in members:
            groups.setdefault(find(key), set()).add(key)
        return {key: groups[find(key)] for key in members}

    @staticmethod
    def _component_cluster(seed: RecordKey, component: Set[RecordKey],
                           edges: Dict[Tuple, MatchPair],
                           keywords: FrozenSet[str],
                           gamma: float) -> ResolvedCluster:
        """Build one seed's cluster from its component's members + edges."""
        pairs = [pair for pair in edges.values()
                 if (pair.left_rid, pair.left_source) in component]
        return ResolvedCluster(
            rid=seed[0], source=seed[1], topic=keywords, gamma=gamma,
            members=tuple(sorted((source, rid)
                                 for rid, source in component)),
            pairs=tuple(sorted(pairs, key=lambda pair: pair.key())))

    # -- cache bookkeeping ---------------------------------------------------
    def _store(self, cache_key: CacheKey, cluster: ResolvedCluster,
               member_synopses: Dict[RecordKey, RecordSynopsis],
               gamma: float) -> None:
        grid = self.ctx.grid
        margin = len(grid.schema) - gamma
        regions: Optional[Set[Tuple[int, ...]]] = set()
        for (rid, source), synopsis in member_synopses.items():
            # A member's own cells: its expiry/retraction must always hit.
            regions.update(grid.record_cells(rid, source))
            if margin <= 0:
                continue
            within = grid.cells_within_margin(
                synopsis.coordinate_rectangle(), margin,
                lattice_cap=self.LATTICE_CAP)
            if within is None:
                regions = None
                break
            regions.update(within)
        while len(self._cache) >= self.cache_size:
            evicted_key, evicted = self._cache.popitem(last=False)
            self._forget(evicted_key, evicted)
        entry = _CacheEntry(cluster,
                            None if regions is None else frozenset(regions))
        self._cache[cache_key] = entry
        if entry.regions is None:
            self._global_keys.add(cache_key)
        else:
            for coordinates in entry.regions:
                self._by_cell.setdefault(coordinates, set()).add(cache_key)

    def _forget(self, cache_key: CacheKey, entry: _CacheEntry) -> None:
        """Unlink one entry from the region index (entry already popped)."""
        if entry.regions is None:
            self._global_keys.discard(cache_key)
            return
        for coordinates in entry.regions:
            keys = self._by_cell.get(coordinates)
            if keys is not None:
                keys.discard(cache_key)
                if not keys:
                    del self._by_cell[coordinates]

    def _on_grid_mutation(self, cells) -> None:
        """Drop every cached cluster whose regions a mutation touched."""
        if not self._cache:
            return
        stale: Set[CacheKey] = set(self._global_keys)
        for coordinates in cells:
            keys = self._by_cell.get(tuple(coordinates))
            if keys:
                stale.update(keys)
        for cache_key in stale:
            entry = self._cache.pop(cache_key, None)
            if entry is None:
                continue
            self._forget(cache_key, entry)
            self.ctx.query.cache_invalidations += 1
