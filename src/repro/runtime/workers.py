"""Persistent refinement workers with resident synopsis caches.

The per-batch process pool (``MicroBatchExecutor`` with
``pool_mode="per-batch"``) re-pickles every partition's query *and
candidate* synopses on every micro-batch: a tuple stays in its window for
``w`` arrivals and is a candidate for many queries, so in steady state the
same synopsis crosses the process boundary dozens of times per window
residency.  This module removes that cost:

* each worker process holds a **resident synopsis store**: the
  :class:`RecordSynopsis` objects (rebuilt once from the shipped imputed
  records against the pivot table received at start-up) plus a columnar
  :class:`~repro.core.pruning.PackedStore` mirror and the lazily built
  per-instance refinement profiles, all of which survive across batches;
* the main process ships only **deltas** — the imputed records of synopses
  not yet resident (new arrivals and, after a checkpoint restore,
  re-materialised window tuples), each under a small integer *handle* —
  plus **work orders** (``(query_handle, [candidate_handles])`` per task,
  sharded by ER-grid region) and **evictions** (handle lists, applied after
  the batch's orders so a tuple evicted mid-batch is still resident for the
  earlier tasks that saw it as a candidate — the same consistency the event
  replay gives the result set).

Synopses are deterministic functions of (imputed record, pivot table,
keywords) — exactly how ``SynopsisStage`` builds them — so the rebuilt
worker copies are bit-identical to the parent's and every verdict,
probability and pruning counter matches the in-process paths.

The protocol is self-healing: the pool tracks which object each shipped
handle points at (identity, not just key equality), so anything the workers
have never seen — or that was re-built in the parent, e.g. by
``restore_checkpoint`` — is simply re-shipped with the next batch that
references it, and the superseded handle is retired.

One message per worker per batch, one response each; payloads are pickled
once in the parent so the executor can account exactly how many bytes the
pooled refinement ships (see
:class:`~repro.runtime.context.TransportStats`).

:class:`ShardedERPool` extends the idea to the *whole* ER phase: its
workers own full resident ER-grid replicas (insert / remove / expire +
candidate lookup + pruning + refinement) and evaluate the queries of their
``ERGrid.region_of`` shard, so the grid scan scales with the worker count
and only matches + counters cross the process boundary.
"""

from __future__ import annotations

import os
import pickle
import queue as queue_module
import traceback
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.pruning import (
    HAS_NUMPY,
    PackedStore,
    PruningStats,
    RecordSynopsis,
    batch_cell_scan,
    batch_prune_stacked,
)
from repro.core.tuples import ImputedRecord, Record

if HAS_NUMPY:
    import numpy as _np
else:  # pragma: no cover - exercised only on numpy-less installs
    _np = None

#: A window/grid identity: ``(rid, source)``.
SynopsisKey = Tuple[str, str]

#: One shipped delta: ``(handle, base record, candidate distributions)``.
Insertion = Tuple[int, Record, Dict[str, Dict[str, float]]]

#: One work order: ``(task_index, query_handle, candidate_handles)``.
WorkOrder = Tuple[int, int, List[int]]


def _rebuild_imputed(record: Record, schema,
                     candidates: Dict[str, Dict[str, float]]) -> ImputedRecord:
    """Reassemble an imputed record exactly as unpickling the parent's would.

    ``ImputedRecord.__init__`` re-validates the candidate distributions, but
    the parent object may legitimately hold states construction would reject
    (e.g. a distribution emptied after the fact — the state
    ``RecordSynopsis.build`` guards against); pickling such an object skips
    ``__init__``, so the delta protocol must too, or the worker diverges
    from every in-process path.
    """
    imputed = ImputedRecord.__new__(ImputedRecord)
    imputed.base = record
    imputed.schema = schema
    imputed.candidates = candidates
    imputed._instances = None
    return imputed


def place_workers(processes) -> Optional[List[int]]:
    """Best-effort CPU placement of pool worker processes.

    Pins each worker to one core, round-robin over the parent's effective
    CPU set (``os.sched_getaffinity``), so resident shards stop migrating
    between cores — keeping their mapped shm pages and refinement-profile
    caches warm in one core's cache hierarchy.  Strictly best-effort: on
    platforms without the ``sched_*affinity`` calls (macOS, Windows) or
    when pinning is denied the pool runs exactly as before.  Returns the
    per-worker core ids (``-1`` for a worker that could not be pinned), or
    ``None`` when placement is unavailable entirely.
    """
    if not hasattr(os, "sched_getaffinity") \
            or not hasattr(os, "sched_setaffinity"):  # pragma: no cover
        return None
    try:
        cores = sorted(os.sched_getaffinity(0))
    except OSError:  # pragma: no cover - restricted environments
        return None
    if not cores:  # pragma: no cover - defensive
        return None
    placement: List[int] = []
    for index, process in enumerate(processes):
        core = cores[index % len(cores)]
        try:
            os.sched_setaffinity(process.pid, {core})
            placement.append(core)
        except OSError:  # pragma: no cover - permission-restricted pin
            placement.append(-1)
    return placement


def _worker_main(worker_id: int, requests, responses, params_blob: bytes) -> None:
    """Worker loop: apply deltas, evaluate orders, apply evictions."""
    from repro.runtime.evaluation import evaluate_candidates

    params = pickle.loads(params_blob)
    vectorized = params.pop("vectorized")
    pivots = params.pop("pivots")
    keywords = params["keywords"]
    schema = pivots.schema
    store: Dict[int, RecordSynopsis] = {}
    packed: Optional[PackedStore] = (
        PackedStore() if (vectorized and HAS_NUMPY) else None)
    while True:
        message = requests.get()
        if message is None:
            break
        try:
            insertions, orders, evictions, want_spans = pickle.loads(message)
            base = perf_counter()
            for handle, record, candidates in insertions:
                imputed = _rebuild_imputed(record, schema, candidates)
                synopsis = RecordSynopsis.build(imputed, pivots, keywords)
                store[handle] = synopsis
                if packed is not None:
                    packed.insert(synopsis)
            applied = perf_counter()
            stats = PruningStats()
            results: List[Tuple[int, List[Tuple[bool, float]]]] = []
            for task_index, query_handle, candidate_handles in orders:
                query = store[query_handle]
                candidates = [store[handle] for handle in candidate_handles]
                results.append((task_index, evaluate_candidates(
                    query, candidates, stats=stats, vectorized=vectorized,
                    store=packed, **params)))
            refined = perf_counter()
            for handle in evictions:
                synopsis = store.pop(handle, None)
                # Only drop the packed row if it still belongs to this
                # synopsis: a same-key re-arrival may have overwritten it.
                if (synopsis is not None and packed is not None
                        and packed.row_for(synopsis) is not None):
                    packed.remove(synopsis.rid, synopsis.source)
            # Span rows ship as (name, rel_start, duration) with starts
            # relative to this worker's message receipt: worker clocks are
            # not synchronised with the parent, only the relative layout is
            # meaningful (the parent re-anchors them under the live trace).
            spans = ([("apply_deltas", 0.0, applied - base),
                      ("refine", applied - base, refined - applied)]
                     if want_spans else None)
            responses.put((worker_id, results, stats, spans, None))
        except Exception:  # pragma: no cover - surfaced in the parent
            responses.put((worker_id, None, None, None,
                           traceback.format_exc()))


class _ResidentWorkerPool:
    """Process/queue lifecycle shared by the resident-state worker pools.

    Spawns ``workers`` daemon processes running ``target(worker_id,
    request_queue, response_queue, params_blob)``, with one request queue
    per worker and a shared response queue; subclasses implement the batch
    protocol on top.
    """

    _TARGET = None  # subclass worker entry point

    def __init__(self, workers: int, params: Dict) -> None:
        import multiprocessing

        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        context = multiprocessing.get_context()
        self._workers = workers
        self._requests = [context.Queue() for _ in range(workers)]
        self._responses = context.Queue()
        blob = pickle.dumps(params, protocol=pickle.HIGHEST_PROTOCOL)
        self._processes = [
            context.Process(target=type(self)._TARGET,
                            args=(index, self._requests[index],
                                  self._responses, blob),
                            daemon=True)
            for index in range(workers)
        ]
        for process in self._processes:
            process.start()
        #: Per-worker core pins (``None`` when the platform offers no
        #: affinity control) — see :func:`place_workers`.
        self.placement: Optional[List[int]] = place_workers(self._processes)
        #: The current handle + parent object per key.  Identity decides
        #: residency, so a re-built parent object (checkpoint restore)
        #: triggers a re-ship under a fresh handle.
        self._resident: Dict[SynopsisKey, Tuple[int, RecordSynopsis]] = {}
        self._next_handle = 0
        self._closed = False

    @property
    def workers(self) -> int:
        return self._workers

    @property
    def resident_count(self) -> int:
        """Number of synopses currently resident in the worker stores."""
        return len(self._resident)

    def _next_response(self):
        while True:
            try:
                return self._responses.get(timeout=1.0)
            except queue_module.Empty:
                for process in self._processes:
                    if not process.is_alive():
                        raise RuntimeError(
                            f"{type(self).__name__} worker "
                            f"pid={process.pid} died "
                            f"(exit code {process.exitcode})")

    # -- lifecycle -----------------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for request_queue in self._requests:
            try:
                request_queue.put(None)
            except (OSError, ValueError):  # pragma: no cover - teardown race
                pass
        for process in self._processes:
            process.join(timeout=5)
        for process in self._processes:
            if process.is_alive():  # pragma: no cover - stuck worker
                process.terminate()
                process.join(timeout=5)
        for request_queue in self._requests:
            request_queue.close()
            request_queue.cancel_join_thread()
        self._responses.close()
        self._responses.cancel_join_thread()
        self._resident.clear()

    def __enter__(self) -> "_ResidentWorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class PersistentRefinementPool(_ResidentWorkerPool):
    """A fixed set of worker processes with resident synopsis stores.

    Parameters
    ----------
    workers:
        Number of worker processes; work orders are routed by
        ``ERGrid.region_of(query) % workers`` so neighbouring queries share
        a worker (and its warm refinement-profile caches).
    params:
        The per-operator configuration shipped once at start-up: the
        ``pivots`` table the workers rebuild synopses against, ``keywords``,
        ``gamma``, ``alpha``, the four ``use_*`` strategy toggles and
        ``vectorized``.
    """

    _TARGET = staticmethod(_worker_main)

    def __init__(self, workers: int, params: Dict) -> None:
        super().__init__(workers, params)
        #: Which workers hold each live handle.  Deltas are shipped per
        #: worker on first reference (region sharding keeps a tuple's
        #: queries on one worker, so most synopses are resident exactly
        #: once), not broadcast.
        self._holders: Dict[int, set] = {}

    # -- batch protocol ------------------------------------------------------
    def _handle_for(self, synopsis: RecordSynopsis, worker: int,
                    insertions_by_worker: Dict[int, List[Insertion]],
                    evictions_by_worker: Dict[int, List[int]]) -> int:
        """Resident handle of one synopsis on one worker, shipping on miss.

        A key whose resident object differs from ``synopsis`` gets a fresh
        handle and the superseded handle is retired from every holder with
        this batch's evictions (applied after the orders run, so same-batch
        references to the old object stay valid).
        """
        key = (synopsis.rid, synopsis.source)
        entry = self._resident.get(key)
        if entry is not None and entry[1] is synopsis:
            handle = entry[0]
        else:
            if entry is not None:
                for holder in self._holders.pop(entry[0], ()):
                    evictions_by_worker.setdefault(holder, []).append(entry[0])
            handle = self._next_handle
            self._next_handle += 1
            self._resident[key] = (handle, synopsis)
        holders = self._holders.setdefault(handle, set())
        if worker not in holders:
            holders.add(worker)
            record = synopsis.record
            insertions_by_worker.setdefault(worker, []).append(
                (handle, record.base, record.candidates))
        return handle

    def evaluate_batch(self, tasks: Sequence,
                       task_regions: Sequence[Tuple[int, int]],
                       evicted_keys: Sequence[SynopsisKey],
                       transport=None, trace=None,
                       ) -> Tuple[Dict[int, List[Tuple[bool, float]]],
                                  PruningStats]:
        """Ship one micro-batch's deltas + orders; gather the verdicts.

        ``task_regions`` lists ``(task_index, region)`` for every task with
        candidates; ``tasks`` is the whole batch's task list (queries and
        candidates are read off it).  Returns the verdict lists keyed by
        task index plus the merged pruning counters.  With ``trace`` (a
        live :class:`~repro.obs.tracing.BatchTrace`), the workers time
        their stages and the shipped spans are stitched under it.
        """
        if self._closed:
            raise RuntimeError("the persistent refinement pool is closed")
        insertions_by_worker: Dict[int, List[Insertion]] = {}
        evictions_by_worker: Dict[int, List[int]] = {}

        # Translate window evictions to handles *before* any same-key
        # re-arrival of this batch re-binds the key to a fresh handle.  The
        # handles stay resident through the orders loop (earlier tasks may
        # still reference them as candidates — possibly from a worker that
        # has never held them, which then receives a normal insert); their
        # per-worker evictions are scheduled afterwards, from the final
        # holder sets.
        eviction_keys_seen: List[Tuple[SynopsisKey, int]] = []
        for key in evicted_keys:
            entry = self._resident.get(key)
            if entry is not None:
                eviction_keys_seen.append((key, entry[0]))

        orders_by_worker: Dict[int, List[WorkOrder]] = {}
        order_count = 0
        for task_index, region in task_regions:
            task = tasks[task_index]
            worker = region % self._workers
            query_handle = self._handle_for(
                task.synopsis, worker, insertions_by_worker,
                evictions_by_worker)
            candidate_handles = [
                self._handle_for(candidate, worker, insertions_by_worker,
                                 evictions_by_worker)
                for candidate in task.candidates
            ]
            orders_by_worker.setdefault(worker, []).append(
                (task_index, query_handle, candidate_handles))
            order_count += 1

        # Schedule the window evictions everywhere their handle ended up,
        # and forget bindings not superseded by a same-batch re-arrival.
        for key, handle in eviction_keys_seen:
            for holder in self._holders.pop(handle, ()):
                evictions_by_worker.setdefault(holder, []).append(handle)
            entry = self._resident.get(key)
            if entry is not None and entry[0] == handle:
                del self._resident[key]

        workers_involved = (set(insertions_by_worker) | set(evictions_by_worker)
                            | set(orders_by_worker))
        if not workers_involved:
            return {}, PruningStats()

        messaged: List[int] = []
        total_bytes = 0
        total_insertions = 0
        total_evictions = 0
        want_spans = trace is not None
        for worker in sorted(workers_involved):
            insertions = insertions_by_worker.get(worker, [])
            evictions = evictions_by_worker.get(worker, [])
            worker_orders = orders_by_worker.get(worker, [])
            payload = pickle.dumps(
                (insertions, worker_orders, evictions, want_spans),
                protocol=pickle.HIGHEST_PROTOCOL)
            total_bytes += len(payload)
            total_insertions += len(insertions)
            total_evictions += len(evictions)
            self._requests[worker].put(payload)
            messaged.append(worker)

        merged = PruningStats()
        verdicts: Dict[int, List[Tuple[bool, float]]] = {}
        errors: List[str] = []
        for _ in messaged:
            worker_id, results, stats, spans, error = self._next_response()
            if error is not None:
                errors.append(error)
                continue
            merged.merge(stats)
            if want_spans:
                trace.add_worker_spans("refinement", worker_id, spans)
            for task_index, task_verdicts in results:
                verdicts[task_index] = task_verdicts
        if errors:
            # Every response of this batch was drained above, but the
            # resident bookkeeping no longer matches what the workers
            # applied — tear the pool down rather than let a caller that
            # catches the error keep using a desynchronised pool.
            self.close()
            raise RuntimeError(
                f"persistent refinement worker failed:\n{errors[0]}")
        if transport is not None:
            transport.record_batch(
                total_bytes,
                synopses=total_insertions,
                orders=order_count,
                evictions=total_evictions)
        return verdicts, merged


# ---------------------------------------------------------------------------
# Sharded ER pool: resident grid replicas, whole ER phase worker-side
# ---------------------------------------------------------------------------
#: One sharded maintenance+lookup op, in arrival order:
#: ``(task_index, evict_keys, insert_handle, region)``.  Every worker
#: replays every op (evictions, then — for its own regions — lookup +
#: pruning + refinement of the arriving tuple, then insertion), which keeps
#: the grid replicas in lock-step with the main grid's arrival-order
#: mutations; ``region % workers`` decides the single worker that evaluates
#: the op's query.
ShardOp = Tuple[int, List[SynopsisKey], int, int]

#: One returned match: ``(candidate_rid, candidate_source, probability)``.
ShardMatch = Tuple[str, str, float]


class ResidentShard:
    """One worker's resident ER-grid replica plus its evaluation state.

    The replica is a *full* grid (every in-window tuple of every region):
    cell aggregates are what the cell-level pruning reads, and a cell's
    aggregate over a subset of its tuples is tighter than the global one —
    a partitioned grid would prune candidates the serial walk admits and
    diverge from the pinned counters.  Replication keeps every lookup
    bit-identical while the *query* workload (the expensive part: cell scan,
    pruning cascade, Theorem 4.4 refinement) is sharded by
    ``ERGrid.region_of``.

    Also used in-process by the per-batch sharded path (stateless workers
    rebuild a shard per batch) and by the shard-determinism property tests.
    """

    def __init__(self, params: Dict, worker_id: int) -> None:
        from repro.indexes.er_grid import ERGrid

        params = dict(params)
        self.pivots = params.pop("pivots")
        self.vectorized = params.pop("vectorized")
        self.worker_count = params.pop("worker_count")
        cells_per_dim = params.pop("cells_per_dim")
        self.worker_id = worker_id
        self.keywords = params["keywords"]
        self.gamma = params["gamma"]
        #: keywords / gamma / alpha / use_* — the evaluate_candidates kwargs.
        self.eval_params = params
        self.schema = self.pivots.schema
        self.grid = ERGrid(self.schema, cells_per_dim=cells_per_dim)
        if self.vectorized:
            self.grid.enable_packed_store()
            self.grid.enable_cell_store()
        self.store: Dict[int, RecordSynopsis] = {}

    def apply_insertions(self, insertions: Sequence[Insertion]) -> None:
        """Rebuild shipped synopsis deltas into the handle store."""
        for handle, record, candidates in insertions:
            imputed = _rebuild_imputed(record, self.schema, candidates)
            self.store[handle] = RecordSynopsis.build(imputed, self.pivots,
                                                      self.keywords)

    def remove_keys(self, keys: Sequence[SynopsisKey]) -> None:
        """Drop stale tuples from the grid (reconciliation fix-up)."""
        for rid, source in keys:
            self.grid.remove(rid, source)

    def insert_handles(self, handles: Sequence[int]) -> None:
        """Insert already-resident synopses into the grid (backfill)."""
        for handle in handles:
            self.grid.insert(self.store[handle])

    def retire(self, handles: Sequence[int]) -> None:
        for handle in handles:
            self.store.pop(handle, None)

    def execute(self, ops: Sequence[ShardOp], spans: Optional[List] = None
                ) -> Tuple[List[Tuple[int, List[ShardMatch]]], PruningStats,
                           Tuple[int, int]]:
        """Replay one micro-batch's ops; evaluate the queries of this shard.

        Every op's evictions and insertion are applied (replica
        maintenance); lookup runs only for ops whose ``region %
        worker_count == worker_id``, recording the candidate lists.  The
        pair evaluation — pure in the captured synopses — is then batched
        over the whole op sequence (:func:`evaluate_task_batch`): one
        vectorized bound pass per query, one Theorem 4.4 refinement sweep
        over every surviving pair of the micro-batch.  Returns the matches
        of the evaluated tasks, the pruning counters, and the
        grid-examination counter deltas ``(cells_examined,
        tuples_examined)``.  With a ``spans`` list, appends
        ``(name, rel_start, duration)`` timing rows (relative to this
        call's entry) for the replay/lookup loop and the refinement sweep.
        """
        from repro.runtime.evaluation import evaluate_task_batch

        base = perf_counter() if spans is not None else 0.0
        grid = self.grid
        cells_before = grid.cells_examined
        tuples_before = grid.tuples_examined
        stats = PruningStats()
        pending: List[Tuple[int, RecordSynopsis, List[RecordSynopsis]]] = []
        for task_index, evict_keys, insert_handle, region in ops:
            for rid, source in evict_keys:
                grid.remove(rid, source)
            synopsis = self.store[insert_handle]
            if region % self.worker_count == self.worker_id:
                # Keywords are not pushed down to the grid (mirroring
                # CandidateLookupStage.lookup): the topic predicate is
                # applied — and counted — by the pruning cascade.
                candidates = grid.candidate_synopses(
                    synopsis, gamma=self.gamma, keywords=frozenset(),
                    exclude_source=synopsis.record.source)
                if candidates:
                    pending.append((task_index, synopsis, candidates))
            grid.insert(synopsis)
        if spans is not None:
            looked_up = perf_counter()
            spans.append(("replay_lookup", 0.0, looked_up - base))
        verdict_lists = evaluate_task_batch(
            [(query, candidates) for _, query, candidates in pending],
            stats=stats, vectorized=self.vectorized,
            store=grid.packed_store, **self.eval_params)
        if spans is not None:
            spans.append(("refine", looked_up - base,
                          perf_counter() - looked_up))
        results: List[Tuple[int, List[ShardMatch]]] = []
        for (task_index, _, candidates), verdicts in zip(pending,
                                                         verdict_lists):
            matches = [
                (candidate.record.rid, candidate.record.source, probability)
                for candidate, (is_match, probability)
                in zip(candidates, verdicts) if is_match
            ]
            if matches:
                results.append((task_index, matches))
        counters = (grid.cells_examined - cells_before,
                    grid.tuples_examined - tuples_before)
        return results, stats, counters


def _shard_worker_main(worker_id: int, requests, responses,
                       params_blob: bytes) -> None:
    """Sharded worker loop: reconcile the replica, replay ops, respond."""
    shard = ResidentShard(pickle.loads(params_blob), worker_id)
    while True:
        message = requests.get()
        if message is None:
            break
        try:
            insertions, stale_keys, backfill, ops, retired, want_spans = \
                pickle.loads(message)
            base = perf_counter()
            shard.apply_insertions(insertions)
            shard.remove_keys(stale_keys)
            shard.insert_handles(backfill)
            reconciled = perf_counter()
            exec_spans: Optional[List] = [] if want_spans else None
            results, stats, counters = shard.execute(ops, spans=exec_spans)
            shard.retire(retired)
            if want_spans:
                # Offset execute()'s relative rows behind the reconcile
                # stage so the shipped layout reads in worker wall order.
                offset = reconciled - base
                spans = [("reconcile", 0.0, offset)] + [
                    (name, start + offset, duration)
                    for name, start, duration in exec_spans]
            else:
                spans = None
            responses.put((worker_id, results, stats, counters, spans, None))
        except Exception:  # pragma: no cover - surfaced in the parent
            responses.put((worker_id, None, None, None, None,
                           traceback.format_exc()))


class ShardedERPool(_ResidentWorkerPool):
    """Worker processes owning resident ER-grid replicas: the whole ER
    phase — candidate lookup, pruning cascade, refinement — runs
    worker-side and only matches + counters return.

    The main process keeps a thin routing grid (windows + key bookkeeping,
    no packed/cell stores) and ships, per micro-batch, one broadcast
    message: synopsis deltas for the batch's arrivals, reconciliation
    fix-ups (see :meth:`begin_batch`), and the arrival-ordered
    :data:`ShardOp` list.  Every worker replays all maintenance ops so the
    replicas stay in lock-step; each query is evaluated by exactly one
    worker (``region % workers``).

    Residency is identity-tracked against the main grid every batch, which
    makes the protocol self-healing: synopses rebuilt out-of-band (a
    checkpoint restore, a watermark retraction) are re-shipped or retired
    with the next batch, with no explicit reset signal.
    """

    _TARGET = staticmethod(_shard_worker_main)

    #: ``grid.mutation_count`` recorded after the last batch; ``None``
    #: before the first one.
    _synced_mutations: Optional[int] = None

    def begin_batch(self, grid) -> Tuple[List[Insertion], List[SynopsisKey],
                                         List[int], List[int]]:
        """Reconcile the replicas with the main grid's pre-batch state.

        Returns ``(insertions, stale_keys, backfill, retired)``: deltas to
        rebuild + grid-insert for keys the replicas are missing (identity
        mismatch included), grid removals for keys they hold that the main
        grid no longer does, and the superseded handles to retire.  In
        steady state — every mutation flowing through :meth:`evaluate_batch`
        ops — the grid's mutation count still matches the one recorded
        after the last batch and the O(window) identity sweep is skipped
        entirely; any out-of-band mutation (checkpoint restore, event-time
        retraction) bumps the count and forces the full diff.
        """
        insertions: List[Insertion] = []
        stale_keys: List[SynopsisKey] = []
        backfill: List[int] = []
        retired: List[int] = []
        if grid.mutation_count == self._synced_mutations:
            return insertions, stale_keys, backfill, retired
        current = dict(grid.synopsis_items())
        for key in list(self._resident):
            handle, synopsis = self._resident[key]
            if current.get(key) is not synopsis:
                stale_keys.append(key)
                retired.append(handle)
                del self._resident[key]
        for key, synopsis in current.items():
            if key not in self._resident:
                handle = self._next_handle
                self._next_handle += 1
                record = synopsis.record
                insertions.append((handle, record.base, record.candidates))
                backfill.append(handle)
                self._resident[key] = (handle, synopsis)
        return insertions, stale_keys, backfill, retired

    def evaluate_batch(self, tasks: Sequence,
                       task_regions: Sequence[int],
                       task_evictions: Sequence[List[SynopsisKey]],
                       reconciliation: Tuple[List[Insertion],
                                             List[SynopsisKey],
                                             List[int], List[int]],
                       grid=None,
                       transport=None, trace=None,
                       ) -> Tuple[Dict[int, List[ShardMatch]], PruningStats,
                                  Tuple[int, int]]:
        """Broadcast one micro-batch; gather matches + counters.

        ``task_regions[i]`` / ``task_evictions[i]`` give task ``i``'s grid
        region and the keys its arrival evicted (applied before its
        lookup); ``reconciliation`` is :meth:`begin_batch`'s output for
        this batch; ``grid`` is the main grid *after* the batch's
        maintenance loop, whose mutation count marks the replicas as
        synced.  Returns per-task match lists keyed by task index, the
        merged pruning counters and the summed grid-examination deltas.
        """
        if self._closed:
            raise RuntimeError("the sharded ER pool is closed")
        try:
            if grid is not None:
                # The ops below mirror exactly the batch's grid mutations
                # into the replicas, so after this batch the replicas match
                # the grid as it stands right now.
                self._synced_mutations = grid.mutation_count
            insertions, stale_keys, backfill, retired = reconciliation
            insertions = list(insertions)
            retired = list(retired)
            ops: List[ShardOp] = []
            for index, task in enumerate(tasks):
                for key in task_evictions[index]:
                    entry = self._resident.pop(key, None)
                    if entry is not None:
                        retired.append(entry[0])
                synopsis = task.synopsis
                key = (synopsis.rid, synopsis.source)
                previous = self._resident.get(key)
                if previous is not None:
                    # Same-key re-arrival without an eviction: the
                    # replica's grid.insert overwrites the entry exactly
                    # like the main grid's; the superseded handle only
                    # needs retiring.
                    retired.append(previous[0])
                handle = self._next_handle
                self._next_handle += 1
                record = synopsis.record
                insertions.append((handle, record.base, record.candidates))
                self._resident[key] = (handle, synopsis)
                ops.append((index, task_evictions[index], handle,
                            task_regions[index]))

            want_spans = trace is not None
            payload = pickle.dumps(
                (insertions, stale_keys, backfill, ops, retired, want_spans),
                protocol=pickle.HIGHEST_PROTOCOL)
            for request_queue in self._requests:
                request_queue.put(payload)
        except Exception:
            # The resident bookkeeping (and the synced mutation mark) may
            # already claim deltas the workers never received — e.g. an
            # unpicklable record aborting the dump.  A desynchronised pool
            # would fail one batch *later* with a misleading handle error,
            # so tear it down at the point of failure instead.
            self.close()
            raise

        merged = PruningStats()
        matches: Dict[int, List[ShardMatch]] = {}
        cells_delta = 0
        tuples_delta = 0
        errors: List[str] = []
        for _ in range(self._workers):
            worker_id, results, stats, counters, spans, error = \
                self._next_response()
            if error is not None:
                errors.append(error)
                continue
            merged.merge(stats)
            if want_spans:
                trace.add_worker_spans("sharded_er", worker_id, spans)
            cells_delta += counters[0]
            tuples_delta += counters[1]
            for task_index, task_matches in results:
                matches[task_index] = task_matches
        if errors:
            # All of this batch's responses were drained above; the failed
            # worker's replica is in an unknown state, so the pool cannot
            # be reused — close it and surface the failure.
            self.close()
            raise RuntimeError(f"sharded ER worker failed:\n{errors[0]}")
        if transport is not None:
            # The message is replicated to every worker; account the bytes
            # that actually cross the process boundary.
            transport.record_batch(
                self._workers * len(payload),
                synopses=self._workers * len(insertions),
                orders=len(ops),
                evictions=self._workers * (len(retired) + len(stale_keys)))
        return matches, merged, (cells_delta, tuples_delta)


def evaluate_shard_partition(blob: bytes, worker_id: int,
                             params_blob: bytes, want_spans: bool = False
                             ) -> Tuple[List[Tuple[int, List[ShardMatch]]],
                                        PruningStats, Tuple[int, int],
                                        Optional[List]]:
    """One stateless shard evaluation (the per-batch sharded-lookup mode).

    ``blob`` is the pre-pickled ``(window_rows, deltas, ops)`` snapshot: the
    pre-batch window contents (grid insertion order), the batch's arrival
    deltas, and the arrival-ordered ops.  Rebuilds a transient
    :class:`ResidentShard`, backfills the window, replays the ops and
    returns this worker's matches + counters — the shipping-cost baseline
    against the resident :class:`ShardedERPool`.  With ``want_spans``, the
    final element carries ``(name, rel_start, duration)`` timing rows
    (relative to this call's entry, prefixed by the window ``rebuild``
    stage) for the parent to stitch under the live batch trace; ``None``
    otherwise.
    """
    base = perf_counter() if want_spans else 0.0
    shard = ResidentShard(pickle.loads(params_blob), worker_id)
    window_rows, deltas, ops = pickle.loads(blob)
    shard.apply_insertions(window_rows)
    shard.apply_insertions(deltas)
    shard.insert_handles([handle for handle, _, _ in window_rows])
    exec_spans: Optional[List] = [] if want_spans else None
    rebuilt = perf_counter() if want_spans else 0.0
    results, stats, counters = shard.execute(ops, spans=exec_spans)
    if want_spans:
        offset = rebuilt - base
        spans: Optional[List] = [("rebuild", 0.0, offset)] + [
            (name, start + offset, duration)
            for name, start, duration in exec_spans]
    else:
        spans = None
    return results, stats, counters, spans


# ---------------------------------------------------------------------------
# Shared-memory sharded ER pool: workers map the columnar plane
# ---------------------------------------------------------------------------
#: One shm-plane op, in arrival order: ``(task_index, region, key, handle,
#: packed_row, pre_evicted, pre_entries, post_entries, replaced_handles)``.
#: ``pre_evicted`` lists ``(key, handle)`` window evictions applied before
#: the arrival; ``pre_entries`` / ``post_entries`` are the grid journal's
#: cell-membership mutations of the eviction / the insertion; ``replaced``
#: lists handles superseded by a same-key re-arrival.
ShmShardOp = Tuple


class _RecordShell:
    """Worker-side residency of one record: the rebuilt imputed record plus
    the slots the refinement-profile caches land in.

    The shm plane carries every *columnar* aggregate of a synopsis, so the
    workers never rebuild :class:`RecordSynopsis` objects — the Theorem 4.4
    refinement tail only needs ``.record`` and somewhere to cache the
    instance profiles (see :mod:`repro.runtime.evaluation`).
    """

    __slots__ = ("record", "_runtime_instance_profiles",
                 "_runtime_sorted_profiles")

    def __init__(self, record: ImputedRecord) -> None:
        self.record = record


def _interval_arrays(intervals):
    """``(lb, ub)`` float64 rows of one journal entry's at-write aggregates."""
    lb = _np.fromiter((pair[0] for pair in intervals), dtype=float,
                      count=len(intervals))
    ub = _np.fromiter((pair[1] for pair in intervals), dtype=float,
                      count=len(intervals))
    return lb, ub


class _ShmShardReplica:
    """One worker's partial replica over the mapped columnar plane.

    Unlike :class:`ResidentShard` this holds **no grid**: the columnar
    state (packed synopsis rows, cell aggregate rows) is read straight out
    of the main process' shared-memory arenas, and the only replicated
    Python state is

    * the cell *membership* mirror (insertion-ordered, replayed from the
      grid journal) that drives candidate collection order,
    * the ``key -> handle -> packed row`` bindings, and
    * the :class:`_RecordShell` residency — records routed to this shard
      (or lazily backfilled) for the instance-level refinement tail.

    Intra-batch cell aggregates are reconstructed exactly: the mapped
    arrays hold end-of-batch values, so an *overlay* (row pre-images +
    at-write journal values) serves the value each cell held at the op
    being replayed.
    """

    def __init__(self, params: Dict, worker_id: int) -> None:
        from repro.runtime.shm_plane import PackedPlaneView, ShmArenaView

        params = dict(params)
        self.schema = params.pop("schema")
        self.worker_count = params.pop("worker_count")
        self.worker_id = worker_id
        self.keywords = params["keywords"]
        self.gamma = params["gamma"]
        self.alpha = params["alpha"]
        self.use_topic = params["use_topic"]
        self.use_similarity = params["use_similarity"]
        self.use_probability = params["use_probability"]
        self.use_instance = params["use_instance"]
        self.packed_view = ShmArenaView()
        self.cells_view = ShmArenaView()
        self.packed_plane = PackedPlaneView(self.packed_view)
        #: ``coords -> [cell_store_row, {key: None}]`` — insertion-ordered
        #: mirror of the main grid's live cells and their member keys.
        self.cells: Dict[Tuple[int, ...], list] = {}
        self.handles: Dict[SynopsisKey, int] = {}
        self.rows: Dict[int, int] = {}
        self.resident: Dict[int, _RecordShell] = {}
        self.epoch = 0
        self._pending = None
        #: Per-batch timing rows ``(name, rel_start, duration)``; ``None``
        #: unless the batch message asked for spans.
        self._spans: Optional[List] = None
        self._span_base = 0.0

    # -- batch protocol ------------------------------------------------------
    def apply_batch(self, message) -> List[int]:
        """Replay one batch's ops; returns handles needing lazy backfill."""
        (_, epoch, packed_desc, cells_desc, reset, pre_rows, routed,
         ops, want_spans) = message
        self._span_base = perf_counter()
        self._spans = [] if want_spans else None
        if reset is not None:
            self._apply_reset(reset)
        elif epoch != self.epoch + 1:
            raise RuntimeError(
                f"shm shard worker {self.worker_id} desynchronised: "
                f"expected epoch {self.epoch + 1}, received {epoch}")
        self.epoch = epoch
        self.packed_view.attach(packed_desc)
        self.cells_view.attach(cells_desc)
        if packed_desc is not None:
            self.packed_view.check_epoch(epoch)
        if cells_desc is not None:
            self.cells_view.check_epoch(epoch)
        for handle, record, candidates in routed:
            self.resident[handle] = _RecordShell(
                _rebuild_imputed(record, self.schema, candidates))

        overlay = {
            row: (_np.array(lb_vals, dtype=float),
                  _np.array(ub_vals, dtype=float))
            for row, (lb_vals, ub_vals) in pre_rows.items()
        }
        stats = PruningStats()
        pending: List[Tuple[int, SynopsisKey, int, List[Tuple]]] = []
        retired: List[int] = []
        cells_examined = 0
        tuples_examined = 0
        for op in ops:
            (index, region, key, handle, row, pre_evicted, pre_entries,
             post_entries, replaced) = op
            for evicted_key, evicted_handle in pre_evicted:
                if self.handles.get(evicted_key) == evicted_handle:
                    del self.handles[evicted_key]
                retired.append(evicted_handle)
            self._apply_entries(pre_entries, overlay)
            if region % self.worker_count == self.worker_id and self.cells:
                cells_examined += len(self.cells)
                counted, survivors = self._lookup(key, row, overlay, stats)
                tuples_examined += counted
                if survivors is not None:
                    pending.append((index, key, handle, survivors))
            self._apply_entries(post_entries, overlay)
            self.handles[key] = handle
            self.rows[handle] = row
            retired.extend(replaced)
        self._pending = (pending, retired, stats,
                         (cells_examined, tuples_examined))
        if self._spans is not None:
            self._spans.append(("replay_lookup", 0.0,
                                perf_counter() - self._span_base))
        needed = {query_handle for _, _, query_handle, _ in pending}
        for _, _, _, survivors in pending:
            needed.update(chandle for _, _, chandle in survivors)
        return sorted(handle for handle in needed
                      if handle not in self.resident)

    def apply_backfill(self, records: Sequence[Insertion]) -> None:
        start = perf_counter() if self._spans is not None else 0.0
        for handle, record, candidates in records:
            self.resident[handle] = _RecordShell(
                _rebuild_imputed(record, self.schema, candidates))
        if self._spans is not None:
            self._spans.append(("backfill", start - self._span_base,
                                perf_counter() - start))

    def take_spans(self) -> Optional[List]:
        """This batch's timing rows (``None`` when not requested),
        cleared for the next batch."""
        spans = self._spans
        self._spans = None
        return spans

    def finish_batch(self) -> Tuple[List[Tuple[int, List[ShardMatch]]],
                                    PruningStats, Tuple[int, int]]:
        """Refine this shard's surviving pairs; retire superseded handles."""
        from repro.runtime.evaluation import refine_pair_cached

        refine_start = perf_counter() if self._spans is not None else 0.0
        pending, retired, stats, counters = self._pending
        self._pending = None
        results: List[Tuple[int, List[ShardMatch]]] = []
        for index, _key, query_handle, survivors in pending:
            query_shell = self.resident[query_handle]
            matches: List[ShardMatch] = []
            for _position, candidate_key, candidate_handle in survivors:
                is_match, probability = refine_pair_cached(
                    query_shell, self.resident[candidate_handle],
                    self.keywords, self.gamma, self.alpha,
                    self.use_instance, stats)
                if is_match:
                    matches.append((candidate_key[0], candidate_key[1],
                                    probability))
            if matches:
                results.append((index, matches))
        # Handles retired mid-batch stay resident until here: an op may
        # reference as candidate a record evicted by a *later* op.
        for handle in retired:
            self.resident.pop(handle, None)
            self.rows.pop(handle, None)
        if self._spans is not None:
            self._spans.append(("refine", refine_start - self._span_base,
                                perf_counter() - refine_start))
        return results, stats, counters

    def close(self) -> None:
        self.packed_view.close()
        self.cells_view.close()

    # -- replay internals ----------------------------------------------------
    def _apply_reset(self, reset) -> None:
        """Rebuild the membership mirror + bindings from a full snapshot.

        Sent when the main grid mutated out-of-band (first batch,
        checkpoint restore, watermark retraction).  Handles are freshly
        assigned by the sender, so the shell residency is dropped — shells
        re-arrive through routing or lazy backfill.
        """
        cell_table, bindings = reset
        self.cells = {coords: [row, dict.fromkeys(keys)]
                      for coords, row, keys in cell_table}
        self.handles = {key: handle
                        for key, (handle, _) in bindings.items()}
        self.rows = {handle: row for handle, row in bindings.values()}
        self.resident = {}

    def _apply_entries(self, entries, overlay) -> None:
        """Replay journal entries into the membership mirror + overlay."""
        for entry in entries:
            kind = entry[0]
            if kind == "a":
                _, coords, row, key, intervals = entry
                cell = self.cells.get(coords)
                if cell is None:
                    self.cells[coords] = cell = [row, {}]
                else:
                    cell[0] = row
                cell[1][key] = None
                overlay[row] = _interval_arrays(intervals)
            elif kind == "r":
                _, coords, row, key, intervals = entry
                cell = self.cells.get(coords)
                if cell is not None:
                    cell[0] = row
                    cell[1].pop(key, None)
                overlay[row] = _interval_arrays(intervals)
            else:  # "d": last member removed, cell deleted
                self.cells.pop(entry[1], None)

    def _lookup(self, key: SynopsisKey, row: int, overlay, stats):
        """Cell scan + pruning cascade of one query against the plane.

        Mirrors ``ERGrid.candidate_synopses`` (store path) +
        ``_vectorized_prune_pass`` exactly: same kernel calls over the same
        float64 values, same iteration order, same counters.  Returns the
        ``tuples_examined`` delta and the surviving ``(position, key,
        handle)`` list (``None`` when the candidate list is empty, matching
        the main-side ``if candidates:`` gate).
        """
        packed = self.packed_view.arrays
        query_lb = packed["dist_lb"][row, :, 0]
        query_ub = packed["dist_ub"][row, :, 0]
        margin = len(self.schema) - self.gamma
        cell_arrays = self.cells_view.arrays
        totals = batch_cell_scan(query_lb, query_ub,
                                 cell_arrays["lb"], cell_arrays["ub"])
        # Workers evaluate with an empty keyword set (mirroring
        # CandidateLookupStage.lookup), so the scan's require_keyword arm
        # never fires and only the distance test decides.
        candidate_keys: List[SynopsisKey] = []
        seen = set()
        counted = 0
        query_source = key[1]
        for _coords, (cell_row, members) in self.cells.items():
            if cell_row in overlay:
                lb_row, ub_row = overlay[cell_row]
                total = batch_cell_scan(query_lb, query_ub,
                                        lb_row[_np.newaxis, :],
                                        ub_row[_np.newaxis, :])[0]
            else:
                total = totals[cell_row]
            if not total < margin:
                continue
            for candidate_key in members:
                if candidate_key in seen:
                    continue
                seen.add(candidate_key)
                counted += 1
                # Same-source candidates (the query's own key included) are
                # excluded after counting, like ``_collect_cell``.
                if candidate_key[1] == query_source:
                    continue
                candidate_keys.append(candidate_key)
        if not candidate_keys:
            return counted, None
        candidate_handles = [self.handles[candidate_key]
                             for candidate_key in candidate_keys]
        index = _np.fromiter((self.rows[handle]
                              for handle in candidate_handles),
                             dtype=_np.intp, count=len(candidate_handles))
        alive, pruned_topic, pruned_similarity, pruned_probability = \
            batch_prune_stacked(
                self.packed_plane.packed_row(row),
                self.packed_plane.gather(index), len(candidate_keys),
                self.keywords, self.gamma, self.alpha,
                use_topic=self.use_topic,
                use_similarity=self.use_similarity,
                use_probability=self.use_probability)
        stats.pairs_considered += len(candidate_keys)
        stats.pruned_by_topic += pruned_topic
        stats.pruned_by_similarity += pruned_similarity
        stats.pruned_by_probability += pruned_probability
        survivors = [
            (position, candidate_keys[position], candidate_handles[position])
            for position in (int(lane) for lane in alive.nonzero()[0])
        ]
        return counted, survivors


def _shm_worker_main(worker_id: int, requests, responses,
                     params_blob: bytes) -> None:
    """Shm worker loop: attach the plane, replay ops, refine, respond."""
    replica = _ShmShardReplica(pickle.loads(params_blob), worker_id)
    try:
        while True:
            message = requests.get()
            if message is None:
                break
            try:
                missing = replica.apply_batch(pickle.loads(message))
                if missing:
                    responses.put((worker_id, "need", missing))
                    reply = requests.get()
                    if reply is None:  # pragma: no cover - teardown race
                        break
                    replica.apply_backfill(pickle.loads(reply)[1])
                results, stats, counters = replica.finish_batch()
                responses.put((worker_id, "done", results, stats, counters,
                               replica.take_spans()))
            except Exception:  # pragma: no cover - surfaced in the parent
                responses.put((worker_id, "error", traceback.format_exc()))
    finally:
        replica.close()


class ShmShardedERPool(_ResidentWorkerPool):
    """Sharded ER pool whose workers map the shared-memory columnar plane.

    The zero-copy successor of :class:`ShardedERPool`: instead of full grid
    replicas fed by per-batch broadcast, workers attach the main process'
    :class:`~repro.runtime.shm_plane.ShmPlane` read-only and replay only
    the per-batch op journal.  Per-record Python state (the imputed records
    the refinement tail enumerates) is *routed* — shipped only to the
    shards whose regions the record's cells touch — with lazy backfill for
    cross-region queries, so replicas are partial-but-aggregate-exact.

    Single-writer epoch protocol: the caller finishes every grid mutation
    of the batch (the arenas are written in place), bumps the plane's
    epoch, and only then ships the orders; workers validate generation and
    epoch headers before reading.  Strict request/response alternation
    means workers never read while the writer writes.

    ``inline=True`` runs the replicas in-process (keeping every pickle
    round-trip) so single-CPU environments and property tests can exercise
    the full protocol without process-spawn latency.
    """

    _TARGET = staticmethod(_shm_worker_main)

    def __init__(self, workers: int, params: Dict, plane,
                 inline: bool = False) -> None:
        self._plane = plane
        self._inline = inline
        if inline:
            if workers < 1:
                raise ValueError(f"workers must be >= 1, got {workers}")
            self._workers = workers
            self._replicas = [
                _ShmShardReplica(pickle.loads(pickle.dumps(
                    params, protocol=pickle.HIGHEST_PROTOCOL)), index)
                for index in range(workers)
            ]
            self._resident: Dict[SynopsisKey, Tuple[int, RecordSynopsis]] = {}
            self._next_handle = 0
            self._closed = False
            #: Inline replicas run in-process: nothing to pin.
            self.placement: Optional[List[int]] = None
        else:
            super().__init__(workers, params)
        #: Parent object of every live handle — kept (even past key
        #: retirement) until batch end so lazy backfill can serve any
        #: handle an in-flight order references.
        self._by_handle: Dict[int, RecordSynopsis] = {}
        self._retired: List[int] = []
        #: ``(worker_id, handle)`` per served backfill; the exactly-once
        #: guarantee (shells persist until retirement) makes duplicates a
        #: protocol bug, which the tests assert against this log.
        self.backfill_log: List[Tuple[int, int]] = []
        self._epoch = 0
        self._synced_mutations: Optional[int] = None

    # -- batch protocol ------------------------------------------------------
    def begin_batch(self, grid):
        """Flush last epoch's freed rows; snapshot on out-of-band mutation.

        Returns the reset payload (cell table + key bindings) when the
        grid mutated outside the op stream since the last batch — the
        first batch, a checkpoint restore, a watermark retraction — and
        ``None`` in steady state, where the op journal alone keeps the
        worker mirrors in lock-step.
        """
        store = grid.packed_store
        store.begin_epoch()
        if grid.mutation_count == self._synced_mutations:
            return None
        self._by_handle.clear()
        del self._retired[:]
        self._resident.clear()
        bindings = {}
        for key, synopsis in grid.synopsis_items():
            handle = self._next_handle
            self._next_handle += 1
            self._resident[key] = (handle, synopsis)
            self._by_handle[handle] = synopsis
            bindings[key] = (handle, store.row_for(synopsis))
        return grid.cell_table(), bindings

    def retire_key(self, key: SynopsisKey):
        """Unbind one evicted key; returns ``(key, handle)`` for the op."""
        entry = self._resident.pop(key, None)
        if entry is None:
            return None
        self._retired.append(entry[0])
        return key, entry[0]

    def register(self, key: SynopsisKey,
                 synopsis: RecordSynopsis) -> Tuple[int, Optional[int]]:
        """Bind one arrival under a fresh handle; returns the superseded
        same-key handle (``None`` normally) for the op's retire list."""
        replaced = None
        previous = self._resident.get(key)
        if previous is not None:
            replaced = previous[0]
            self._retired.append(replaced)
        handle = self._next_handle
        self._next_handle += 1
        self._resident[key] = (handle, synopsis)
        self._by_handle[handle] = synopsis
        return handle, replaced

    def _serve_backfill(self, worker_id: int,
                        handles: Sequence[int]) -> Tuple[bytes, int]:
        records: List[Insertion] = []
        for handle in handles:
            synopsis = self._by_handle[handle]
            self.backfill_log.append((worker_id, handle))
            record = synopsis.record
            records.append((handle, record.base, record.candidates))
        payload = pickle.dumps(("backfill", records),
                               protocol=pickle.HIGHEST_PROTOCOL)
        return payload, len(records)

    def evaluate_batch(self, grid, reset, ops: Sequence[ShmShardOp],
                       routed: Dict[int, List[Insertion]], pre_rows,
                       transport=None, trace=None):
        """Publish the epoch, ship the op journal, gather matches.

        ``reset`` is :meth:`begin_batch`'s output; ``ops`` the
        arrival-ordered op list; ``routed`` the per-worker record deltas;
        ``pre_rows`` the cell-row pre-images of the batch.  ``grid`` is the
        main grid *after* its maintenance loop — every one of its
        mutations is mirrored by the ops, which marks the replicas synced.
        """
        if self._closed:
            raise RuntimeError("the shm sharded ER pool is closed")
        self._synced_mutations = grid.mutation_count
        self._epoch += 1
        # The single-writer contract: every arena write of this batch
        # happened in the caller's maintenance loop; publishing the epoch
        # is the last write before any order ships.
        self._plane.set_epoch(self._epoch)
        packed_desc = self._plane.packed.descriptor()
        cells_desc = self._plane.cells.descriptor()
        payloads = []
        total_bytes = 0
        routed_count = 0
        want_spans = trace is not None
        for worker in range(self._workers):
            deltas = routed.get(worker, [])
            routed_count += len(deltas)
            payload = pickle.dumps(
                ("batch", self._epoch, packed_desc, cells_desc, reset,
                 pre_rows, deltas, ops, want_spans),
                protocol=pickle.HIGHEST_PROTOCOL)
            total_bytes += len(payload)
            payloads.append(payload)

        merged = PruningStats()
        matches: Dict[int, List[ShardMatch]] = {}
        cells_delta = 0
        tuples_delta = 0
        backfill_bytes = 0
        backfill_count = 0
        if self._inline:
            try:
                for worker, payload in enumerate(payloads):
                    replica = self._replicas[worker]
                    missing = replica.apply_batch(pickle.loads(payload))
                    if missing:
                        reply, count = self._serve_backfill(worker, missing)
                        backfill_bytes += len(reply)
                        backfill_count += count
                        replica.apply_backfill(pickle.loads(reply)[1])
                    results, stats, counters = replica.finish_batch()
                    if want_spans:
                        trace.add_worker_spans("shm_sharded_er", worker,
                                               replica.take_spans())
                    merged.merge(stats)
                    cells_delta += counters[0]
                    tuples_delta += counters[1]
                    for task_index, task_matches in results:
                        matches[task_index] = task_matches
            except Exception:
                self.close()
                raise
        else:
            try:
                for worker, payload in enumerate(payloads):
                    self._requests[worker].put(payload)
            except Exception:
                # The epoch was published and the bookkeeping advanced for
                # a batch the workers never (fully) received; the pool
                # cannot recover the lock-step, so fail it at the point of
                # error.
                self.close()
                raise
            errors: List[str] = []
            done = 0
            while done < self._workers:
                response = self._next_response()
                worker_id, tag = response[0], response[1]
                if tag == "need":
                    reply, count = self._serve_backfill(worker_id,
                                                        response[2])
                    backfill_bytes += len(reply)
                    backfill_count += count
                    self._requests[worker_id].put(reply)
                    continue
                done += 1
                if tag == "error":
                    errors.append(response[2])
                    continue
                _, _, results, stats, counters, spans = response
                if want_spans:
                    trace.add_worker_spans("shm_sharded_er", worker_id, spans)
                merged.merge(stats)
                cells_delta += counters[0]
                tuples_delta += counters[1]
                for task_index, task_matches in results:
                    matches[task_index] = task_matches
            if errors:
                self.close()
                raise RuntimeError(
                    f"shm sharded ER worker failed:\n{errors[0]}")

        if transport is not None:
            transport.record_batch(
                total_bytes + backfill_bytes,
                synopses=routed_count + backfill_count,
                orders=len(ops),
                evictions=len(self._retired),
                routed=routed_count,
                backfills=backfill_count,
                shm_mapped=self._plane.nbytes,
                placement=self.placement)
        for handle in self._retired:
            self._by_handle.pop(handle, None)
        del self._retired[:]
        return matches, merged, (cells_delta, tuples_delta)

    # -- lifecycle -----------------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        if self._inline:
            self._closed = True
            for replica in self._replicas:
                replica.close()
            self._resident.clear()
        else:
            # The workers detach their views in their ``finally`` blocks as
            # the sentinel arrives; the plane itself (and its segments) is
            # owned and unlinked by the executor.
            super().close()
        self._by_handle.clear()
