"""Persistent refinement workers with resident synopsis caches.

The per-batch process pool (``MicroBatchExecutor`` with
``pool_mode="per-batch"``) re-pickles every partition's query *and
candidate* synopses on every micro-batch: a tuple stays in its window for
``w`` arrivals and is a candidate for many queries, so in steady state the
same synopsis crosses the process boundary dozens of times per window
residency.  This module removes that cost:

* each worker process holds a **resident synopsis store**: the
  :class:`RecordSynopsis` objects (rebuilt once from the shipped imputed
  records against the pivot table received at start-up) plus a columnar
  :class:`~repro.core.pruning.PackedStore` mirror and the lazily built
  per-instance refinement profiles, all of which survive across batches;
* the main process ships only **deltas** — the imputed records of synopses
  not yet resident (new arrivals and, after a checkpoint restore,
  re-materialised window tuples), each under a small integer *handle* —
  plus **work orders** (``(query_handle, [candidate_handles])`` per task,
  sharded by ER-grid region) and **evictions** (handle lists, applied after
  the batch's orders so a tuple evicted mid-batch is still resident for the
  earlier tasks that saw it as a candidate — the same consistency the event
  replay gives the result set).

Synopses are deterministic functions of (imputed record, pivot table,
keywords) — exactly how ``SynopsisStage`` builds them — so the rebuilt
worker copies are bit-identical to the parent's and every verdict,
probability and pruning counter matches the in-process paths.

The protocol is self-healing: the pool tracks which object each shipped
handle points at (identity, not just key equality), so anything the workers
have never seen — or that was re-built in the parent, e.g. by
``restore_checkpoint`` — is simply re-shipped with the next batch that
references it, and the superseded handle is retired.

One message per worker per batch, one response each; payloads are pickled
once in the parent so the executor can account exactly how many bytes the
pooled refinement ships (see
:class:`~repro.runtime.context.TransportStats`).
"""

from __future__ import annotations

import pickle
import queue as queue_module
import traceback
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.pruning import (
    HAS_NUMPY,
    PackedStore,
    PruningStats,
    RecordSynopsis,
)
from repro.core.tuples import ImputedRecord, Record

#: A window/grid identity: ``(rid, source)``.
SynopsisKey = Tuple[str, str]

#: One shipped delta: ``(handle, base record, candidate distributions)``.
Insertion = Tuple[int, Record, Dict[str, Dict[str, float]]]

#: One work order: ``(task_index, query_handle, candidate_handles)``.
WorkOrder = Tuple[int, int, List[int]]


def _rebuild_imputed(record: Record, schema,
                     candidates: Dict[str, Dict[str, float]]) -> ImputedRecord:
    """Reassemble an imputed record exactly as unpickling the parent's would.

    ``ImputedRecord.__init__`` re-validates the candidate distributions, but
    the parent object may legitimately hold states construction would reject
    (e.g. a distribution emptied after the fact — the state
    ``RecordSynopsis.build`` guards against); pickling such an object skips
    ``__init__``, so the delta protocol must too, or the worker diverges
    from every in-process path.
    """
    imputed = ImputedRecord.__new__(ImputedRecord)
    imputed.base = record
    imputed.schema = schema
    imputed.candidates = candidates
    imputed._instances = None
    return imputed


def _worker_main(worker_id: int, requests, responses, params_blob: bytes) -> None:
    """Worker loop: apply deltas, evaluate orders, apply evictions."""
    from repro.runtime.evaluation import evaluate_candidates

    params = pickle.loads(params_blob)
    vectorized = params.pop("vectorized")
    pivots = params.pop("pivots")
    keywords = params["keywords"]
    schema = pivots.schema
    store: Dict[int, RecordSynopsis] = {}
    packed: Optional[PackedStore] = (
        PackedStore() if (vectorized and HAS_NUMPY) else None)
    while True:
        message = requests.get()
        if message is None:
            break
        try:
            insertions, orders, evictions = pickle.loads(message)
            for handle, record, candidates in insertions:
                imputed = _rebuild_imputed(record, schema, candidates)
                synopsis = RecordSynopsis.build(imputed, pivots, keywords)
                store[handle] = synopsis
                if packed is not None:
                    packed.insert(synopsis)
            stats = PruningStats()
            results: List[Tuple[int, List[Tuple[bool, float]]]] = []
            for task_index, query_handle, candidate_handles in orders:
                query = store[query_handle]
                candidates = [store[handle] for handle in candidate_handles]
                results.append((task_index, evaluate_candidates(
                    query, candidates, stats=stats, vectorized=vectorized,
                    store=packed, **params)))
            for handle in evictions:
                synopsis = store.pop(handle, None)
                # Only drop the packed row if it still belongs to this
                # synopsis: a same-key re-arrival may have overwritten it.
                if (synopsis is not None and packed is not None
                        and packed.row_for(synopsis) is not None):
                    packed.remove(synopsis.rid, synopsis.source)
            responses.put((worker_id, results, stats, None))
        except Exception:  # pragma: no cover - surfaced in the parent
            responses.put((worker_id, None, None, traceback.format_exc()))


class PersistentRefinementPool:
    """A fixed set of worker processes with resident synopsis stores.

    Parameters
    ----------
    workers:
        Number of worker processes; work orders are routed by
        ``ERGrid.region_of(query) % workers`` so neighbouring queries share
        a worker (and its warm refinement-profile caches).
    params:
        The per-operator configuration shipped once at start-up: the
        ``pivots`` table the workers rebuild synopses against, ``keywords``,
        ``gamma``, ``alpha``, the four ``use_*`` strategy toggles and
        ``vectorized``.
    """

    def __init__(self, workers: int, params: Dict) -> None:
        import multiprocessing

        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        context = multiprocessing.get_context()
        self._workers = workers
        self._requests = [context.Queue() for _ in range(workers)]
        self._responses = context.Queue()
        blob = pickle.dumps(params, protocol=pickle.HIGHEST_PROTOCOL)
        self._processes = [
            context.Process(target=_worker_main,
                            args=(index, self._requests[index],
                                  self._responses, blob),
                            daemon=True)
            for index in range(workers)
        ]
        for process in self._processes:
            process.start()
        #: The current handle + parent object per key.  Identity decides
        #: residency, so a re-built parent object (checkpoint restore)
        #: triggers a re-ship under a fresh handle.
        self._resident: Dict[SynopsisKey, Tuple[int, RecordSynopsis]] = {}
        #: Which workers hold each live handle.  Deltas are shipped per
        #: worker on first reference (region sharding keeps a tuple's
        #: queries on one worker, so most synopses are resident exactly
        #: once), not broadcast.
        self._holders: Dict[int, set] = {}
        self._next_handle = 0
        self._closed = False

    @property
    def workers(self) -> int:
        return self._workers

    @property
    def resident_count(self) -> int:
        """Number of synopses currently resident in every worker store."""
        return len(self._resident)

    # -- batch protocol ------------------------------------------------------
    def _handle_for(self, synopsis: RecordSynopsis, worker: int,
                    insertions_by_worker: Dict[int, List[Insertion]],
                    evictions_by_worker: Dict[int, List[int]]) -> int:
        """Resident handle of one synopsis on one worker, shipping on miss.

        A key whose resident object differs from ``synopsis`` gets a fresh
        handle and the superseded handle is retired from every holder with
        this batch's evictions (applied after the orders run, so same-batch
        references to the old object stay valid).
        """
        key = (synopsis.rid, synopsis.source)
        entry = self._resident.get(key)
        if entry is not None and entry[1] is synopsis:
            handle = entry[0]
        else:
            if entry is not None:
                for holder in self._holders.pop(entry[0], ()):
                    evictions_by_worker.setdefault(holder, []).append(entry[0])
            handle = self._next_handle
            self._next_handle += 1
            self._resident[key] = (handle, synopsis)
        holders = self._holders.setdefault(handle, set())
        if worker not in holders:
            holders.add(worker)
            record = synopsis.record
            insertions_by_worker.setdefault(worker, []).append(
                (handle, record.base, record.candidates))
        return handle

    def evaluate_batch(self, tasks: Sequence,
                       task_regions: Sequence[Tuple[int, int]],
                       evicted_keys: Sequence[SynopsisKey],
                       transport=None,
                       ) -> Tuple[Dict[int, List[Tuple[bool, float]]],
                                  PruningStats]:
        """Ship one micro-batch's deltas + orders; gather the verdicts.

        ``task_regions`` lists ``(task_index, region)`` for every task with
        candidates; ``tasks`` is the whole batch's task list (queries and
        candidates are read off it).  Returns the verdict lists keyed by
        task index plus the merged pruning counters.
        """
        if self._closed:
            raise RuntimeError("the persistent refinement pool is closed")
        insertions_by_worker: Dict[int, List[Insertion]] = {}
        evictions_by_worker: Dict[int, List[int]] = {}

        # Translate window evictions to handles *before* any same-key
        # re-arrival of this batch re-binds the key to a fresh handle.  The
        # handles stay resident through the orders loop (earlier tasks may
        # still reference them as candidates — possibly from a worker that
        # has never held them, which then receives a normal insert); their
        # per-worker evictions are scheduled afterwards, from the final
        # holder sets.
        eviction_keys_seen: List[Tuple[SynopsisKey, int]] = []
        for key in evicted_keys:
            entry = self._resident.get(key)
            if entry is not None:
                eviction_keys_seen.append((key, entry[0]))

        orders_by_worker: Dict[int, List[WorkOrder]] = {}
        order_count = 0
        for task_index, region in task_regions:
            task = tasks[task_index]
            worker = region % self._workers
            query_handle = self._handle_for(
                task.synopsis, worker, insertions_by_worker,
                evictions_by_worker)
            candidate_handles = [
                self._handle_for(candidate, worker, insertions_by_worker,
                                 evictions_by_worker)
                for candidate in task.candidates
            ]
            orders_by_worker.setdefault(worker, []).append(
                (task_index, query_handle, candidate_handles))
            order_count += 1

        # Schedule the window evictions everywhere their handle ended up,
        # and forget bindings not superseded by a same-batch re-arrival.
        for key, handle in eviction_keys_seen:
            for holder in self._holders.pop(handle, ()):
                evictions_by_worker.setdefault(holder, []).append(handle)
            entry = self._resident.get(key)
            if entry is not None and entry[0] == handle:
                del self._resident[key]

        workers_involved = (set(insertions_by_worker) | set(evictions_by_worker)
                            | set(orders_by_worker))
        if not workers_involved:
            return {}, PruningStats()

        messaged: List[int] = []
        total_bytes = 0
        total_insertions = 0
        total_evictions = 0
        for worker in sorted(workers_involved):
            insertions = insertions_by_worker.get(worker, [])
            evictions = evictions_by_worker.get(worker, [])
            worker_orders = orders_by_worker.get(worker, [])
            payload = pickle.dumps((insertions, worker_orders, evictions),
                                   protocol=pickle.HIGHEST_PROTOCOL)
            total_bytes += len(payload)
            total_insertions += len(insertions)
            total_evictions += len(evictions)
            self._requests[worker].put(payload)
            messaged.append(worker)

        merged = PruningStats()
        verdicts: Dict[int, List[Tuple[bool, float]]] = {}
        for _ in messaged:
            _, results, stats, error = self._next_response()
            if error is not None:
                raise RuntimeError(
                    f"persistent refinement worker failed:\n{error}")
            merged.merge(stats)
            for task_index, task_verdicts in results:
                verdicts[task_index] = task_verdicts
        if transport is not None:
            transport.record_batch(
                total_bytes,
                synopses=total_insertions,
                orders=order_count,
                evictions=total_evictions)
        return verdicts, merged

    def _next_response(self):
        while True:
            try:
                return self._responses.get(timeout=1.0)
            except queue_module.Empty:
                for process in self._processes:
                    if not process.is_alive():
                        raise RuntimeError(
                            "persistent refinement worker "
                            f"pid={process.pid} died "
                            f"(exit code {process.exitcode})")

    # -- lifecycle -----------------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for request_queue in self._requests:
            try:
                request_queue.put(None)
            except (OSError, ValueError):  # pragma: no cover - teardown race
                pass
        for process in self._processes:
            process.join(timeout=5)
        for process in self._processes:
            if process.is_alive():  # pragma: no cover - stuck worker
                process.terminate()
                process.join(timeout=5)
        for request_queue in self._requests:
            request_queue.close()
            request_queue.cancel_join_thread()
        self._responses.close()
        self._responses.cancel_join_thread()
        self._resident.clear()

    def __enter__(self) -> "PersistentRefinementPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
