"""JSON persistence for rules, records, match results and workloads.

A downstream deployment of TER-iDS mines CDD rules and selects pivots
*offline* (Algorithm 1's pre-computation phase) and then runs the online
operator possibly on a different machine or at a later time.  This module
provides the serialisation layer for that hand-off: mined rules, pivot
tables, repositories and reported match pairs can be written to and read
back from plain JSON files.

Only standard-library ``json`` is used; every ``*_to_dict`` function has a
matching ``*_from_dict`` inverse and round-tripping is covered by tests.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Union

from repro.core.matching import MatchPair
from repro.core.tuples import ImputedRecord, Record, Schema
from repro.imputation.cdd import (
    CONSTRAINT_CONSTANT,
    CONSTRAINT_INTERVAL,
    CONSTRAINT_MISSING,
    AttributeConstraint,
    CDDRule,
)
from repro.imputation.repository import DataRepository
from repro.indexes.pivots import PivotTable

PathLike = Union[str, Path]


# ---------------------------------------------------------------------------
# Records and repositories
# ---------------------------------------------------------------------------
def record_to_dict(record: Record) -> Dict:
    """Serialise one record (missing attributes stay ``None``)."""
    return {
        "rid": record.rid,
        "source": record.source,
        "timestamp": record.timestamp,
        "values": dict(record.values),
    }


def record_from_dict(data: Dict) -> Record:
    """Inverse of :func:`record_to_dict`."""
    return Record(rid=data["rid"], values=data.get("values", {}),
                  source=data.get("source", "stream-0"),
                  timestamp=data.get("timestamp", -1))


def imputed_record_to_dict(record: ImputedRecord) -> Dict:
    """Serialise an imputed record (base tuple + candidate distributions).

    The enumerated instances are *not* persisted: they are a deterministic
    function of the candidate distributions and are re-derived lazily after
    :func:`imputed_record_from_dict`.
    """
    return {
        "base": record_to_dict(record.base),
        "candidates": {attribute: dict(distribution)
                       for attribute, distribution in record.candidates.items()},
    }


def imputed_record_from_dict(data: Dict, schema: Schema) -> ImputedRecord:
    """Inverse of :func:`imputed_record_to_dict`."""
    return ImputedRecord(
        base=record_from_dict(data["base"]),
        schema=schema,
        candidates={attribute: dict(distribution)
                    for attribute, distribution in data.get("candidates", {}).items()},
    )


def repository_to_dict(repository: DataRepository) -> Dict:
    """Serialise a repository together with its schema."""
    return {
        "schema": list(repository.schema),
        "samples": [record_to_dict(sample) for sample in repository.samples],
    }


def repository_from_dict(data: Dict) -> DataRepository:
    """Inverse of :func:`repository_to_dict`."""
    schema = Schema(attributes=tuple(data["schema"]))
    samples = [record_from_dict(row) for row in data.get("samples", [])]
    return DataRepository(schema=schema, samples=samples)


# ---------------------------------------------------------------------------
# CDD rules
# ---------------------------------------------------------------------------
def _constraint_to_dict(constraint: AttributeConstraint) -> Dict:
    return {
        "attribute": constraint.attribute,
        "kind": constraint.kind,
        "interval": list(constraint.interval),
        "constant": constraint.constant,
    }


def _constraint_from_dict(data: Dict) -> AttributeConstraint:
    kind = data["kind"]
    if kind not in (CONSTRAINT_CONSTANT, CONSTRAINT_INTERVAL, CONSTRAINT_MISSING):
        raise ValueError(f"unknown constraint kind {kind!r}")
    return AttributeConstraint(
        attribute=data["attribute"],
        kind=kind,
        interval=tuple(data.get("interval", (0.0, 1.0))),
        constant=data.get("constant"),
    )


def rule_to_dict(rule: CDDRule) -> Dict:
    """Serialise one CDD rule."""
    return {
        "determinants": [_constraint_to_dict(c) for c in rule.determinants],
        "dependent": rule.dependent,
        "dependent_interval": list(rule.dependent_interval),
        "support": rule.support,
        "rule_id": rule.rule_id,
    }


def rule_from_dict(data: Dict) -> CDDRule:
    """Inverse of :func:`rule_to_dict`."""
    return CDDRule(
        determinants=tuple(_constraint_from_dict(c) for c in data["determinants"]),
        dependent=data["dependent"],
        dependent_interval=tuple(data["dependent_interval"]),
        support=data.get("support", 0),
        rule_id=data.get("rule_id", ""),
    )


def save_rules(rules: Sequence[CDDRule], path: PathLike) -> None:
    """Write mined CDD rules to a JSON file."""
    payload = {"rules": [rule_to_dict(rule) for rule in rules]}
    Path(path).write_text(json.dumps(payload, indent=2))


def load_rules(path: PathLike) -> List[CDDRule]:
    """Read CDD rules written by :func:`save_rules`."""
    payload = json.loads(Path(path).read_text())
    return [rule_from_dict(row) for row in payload.get("rules", [])]


# ---------------------------------------------------------------------------
# Pivot tables
# ---------------------------------------------------------------------------
def pivots_to_dict(pivots: PivotTable) -> Dict:
    """Serialise a pivot table (selection reports are not persisted)."""
    return {
        "schema": list(pivots.schema),
        "pivots": {attribute: list(values)
                   for attribute, values in pivots.pivots.items()},
    }


def pivots_from_dict(data: Dict) -> PivotTable:
    """Inverse of :func:`pivots_to_dict`."""
    schema = Schema(attributes=tuple(data["schema"]))
    return PivotTable(schema=schema,
                      pivots={attribute: list(values)
                              for attribute, values in data["pivots"].items()})


def save_pivots(pivots: PivotTable, path: PathLike) -> None:
    """Write a pivot table to a JSON file."""
    Path(path).write_text(json.dumps(pivots_to_dict(pivots), indent=2))


def load_pivots(path: PathLike) -> PivotTable:
    """Read a pivot table written by :func:`save_pivots`."""
    return pivots_from_dict(json.loads(Path(path).read_text()))


# ---------------------------------------------------------------------------
# Match results
# ---------------------------------------------------------------------------
def match_to_dict(pair: MatchPair) -> Dict:
    """Serialise one reported match pair."""
    return {
        "left_rid": pair.left_rid,
        "left_source": pair.left_source,
        "right_rid": pair.right_rid,
        "right_source": pair.right_source,
        "probability": pair.probability,
        "timestamp": pair.timestamp,
    }


def match_from_dict(data: Dict) -> MatchPair:
    """Inverse of :func:`match_to_dict`."""
    return MatchPair(
        left_rid=data["left_rid"], left_source=data["left_source"],
        right_rid=data["right_rid"], right_source=data["right_source"],
        probability=data["probability"], timestamp=data.get("timestamp", -1),
    )


def save_matches(pairs: Iterable[MatchPair], path: PathLike) -> None:
    """Write reported match pairs to a JSON file."""
    payload = {"matches": [match_to_dict(pair) for pair in pairs]}
    Path(path).write_text(json.dumps(payload, indent=2))


def load_matches(path: PathLike) -> List[MatchPair]:
    """Read match pairs written by :func:`save_matches`."""
    payload = json.loads(Path(path).read_text())
    return [match_from_dict(row) for row in payload.get("matches", [])]


# ---------------------------------------------------------------------------
# Engine checkpoints
# ---------------------------------------------------------------------------
CHECKPOINT_FORMAT = "ter-ids-checkpoint"
CHECKPOINT_VERSION = 1


def save_checkpoint(state: Dict, path: PathLike) -> None:
    """Write an engine-state checkpoint (see ``repro.runtime.checkpoint``).

    The state dict is produced by ``TERiDSEngine.checkpoint()``; this helper
    only wraps it in a format/version envelope and writes JSON.
    """
    payload = {"format": CHECKPOINT_FORMAT, "version": CHECKPOINT_VERSION,
               "state": state}
    Path(path).write_text(json.dumps(payload, indent=2))


def load_checkpoint(path: PathLike) -> Dict:
    """Read a checkpoint written by :func:`save_checkpoint`."""
    payload = json.loads(Path(path).read_text())
    if payload.get("format") != CHECKPOINT_FORMAT:
        raise ValueError(f"{path} is not a TER-iDS checkpoint")
    if payload.get("version") != CHECKPOINT_VERSION:
        raise ValueError(
            f"unsupported checkpoint version {payload.get('version')!r}")
    return payload["state"]


def save_repository(repository: DataRepository, path: PathLike) -> None:
    """Write a data repository to a JSON file."""
    Path(path).write_text(json.dumps(repository_to_dict(repository), indent=2))


def load_repository(path: PathLike) -> DataRepository:
    """Read a data repository written by :func:`save_repository`."""
    return repository_from_dict(json.loads(Path(path).read_text()))
