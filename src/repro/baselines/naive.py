"""The straightforward (index-free) TER-iDS method of Section 2.3.

For each newly arriving tuple the straightforward method

1. collects *all* CDD rules whose dependent attribute is missing in the
   tuple (no CDD-index),
2. scans the *whole* repository for samples satisfying each rule (no
   DR-index),
3. compares the imputed tuple against *every* in-window tuple of the other
   streams and evaluates the exact TER-iDS probability (no ER-grid, no
   pruning bounds).

It is the shared skeleton of the ``CDD+ER``, ``DD+ER``, ``er+ER`` and
``con+ER`` baselines, which differ only in the imputation component plugged
into it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Protocol, Tuple

from repro.core.config import TERiDSConfig
from repro.core.matching import (
    EntityResultSet,
    MatchPair,
    ter_ids_probability,
)
from repro.core.stream import SlidingWindow
from repro.core.tuples import ImputedRecord, Record, Schema


class Imputer(Protocol):
    """Anything that can impute one record."""

    def impute(self, record: Record) -> ImputedRecord:  # pragma: no cover - protocol
        ...


@dataclass
class NestedLoopMatcher:
    """Exact pairwise matcher over per-stream sliding windows (no synopsis)."""

    config: TERiDSConfig
    windows: Dict[str, SlidingWindow] = field(default_factory=dict)
    pairs_evaluated: int = 0

    def _window_for(self, source: str) -> SlidingWindow:
        window = self.windows.get(source)
        if window is None:
            window = SlidingWindow(capacity=self.config.window_size)
            self.windows[source] = window
        return window

    def expire_and_insert(self, imputed: ImputedRecord) -> Optional[ImputedRecord]:
        """Insert the tuple into its stream's window, returning the evicted one."""
        window = self._window_for(imputed.source)
        return window.insert(imputed)

    def candidates(self, imputed: ImputedRecord) -> List[ImputedRecord]:
        """Every in-window tuple of the *other* streams."""
        out: List[ImputedRecord] = []
        for source, window in self.windows.items():
            if source == imputed.source:
                continue
            out.extend(window.items())
        return out

    def match(self, imputed: ImputedRecord,
              candidates: Iterable[ImputedRecord]) -> List[MatchPair]:
        """Exact Equation (2) evaluation of the tuple against each candidate."""
        keywords: FrozenSet[str] = self.config.keywords
        gamma = self.config.gamma
        alpha = self.config.alpha
        matches: List[MatchPair] = []
        for candidate in candidates:
            self.pairs_evaluated += 1
            probability = ter_ids_probability(imputed, candidate, keywords, gamma)
            if probability > alpha:
                matches.append(MatchPair(
                    left_rid=imputed.rid,
                    left_source=imputed.source,
                    right_rid=candidate.rid,
                    right_source=candidate.source,
                    probability=probability,
                    timestamp=imputed.timestamp,
                ))
        return matches


@dataclass
class BaselineReport:
    """Result of running a baseline pipeline over a workload."""

    method: str
    matches: List[MatchPair]
    timestamps_processed: int
    total_seconds: float
    pairs_evaluated: int
    imputation_seconds: float = 0.0
    er_seconds: float = 0.0

    @property
    def mean_seconds_per_timestamp(self) -> float:
        return self.total_seconds / max(1, self.timestamps_processed)


class StraightforwardTERiDS:
    """The index-free baseline skeleton with a pluggable imputer.

    ``observe_stream`` controls whether complete stream tuples are fed to the
    imputer as donors (needed by the ``con+ER`` stream-neighbour imputer).
    """

    def __init__(self, config: TERiDSConfig, imputer: Imputer,
                 method_name: str = "straightforward",
                 observe_stream: bool = False) -> None:
        self.config = config
        self.imputer = imputer
        self.method_name = method_name
        self.observe_stream = observe_stream
        self.matcher = NestedLoopMatcher(config=config)
        self.result_set = EntityResultSet()
        self.timestamps_processed = 0
        self.imputation_seconds = 0.0
        self.er_seconds = 0.0

    def process(self, record: Record) -> List[MatchPair]:
        """Impute one arriving tuple and match it against the other windows."""
        self.timestamps_processed += 1
        if self.observe_stream and hasattr(self.imputer, "observe"):
            self.imputer.observe(record)  # type: ignore[attr-defined]

        start = time.perf_counter()
        imputed = self.imputer.impute(record)
        self.imputation_seconds += time.perf_counter() - start

        start = time.perf_counter()
        evicted = self.matcher.expire_and_insert(imputed)
        if evicted is not None:
            self.result_set.remove_record(evicted.rid, evicted.source)
        candidates = self.matcher.candidates(imputed)
        matches = self.matcher.match(imputed, candidates)
        for pair in matches:
            self.result_set.add(pair)
        self.er_seconds += time.perf_counter() - start
        return matches

    def run(self, records: Iterable[Record]) -> BaselineReport:
        """Process a whole record sequence and return a report."""
        start = time.perf_counter()
        matches: List[MatchPair] = []
        for record in records:
            matches.extend(self.process(record))
        total = time.perf_counter() - start
        return BaselineReport(
            method=self.method_name,
            matches=matches,
            timestamps_processed=self.timestamps_processed,
            total_seconds=total,
            pairs_evaluated=self.matcher.pairs_evaluated,
            imputation_seconds=self.imputation_seconds,
            er_seconds=self.er_seconds,
        )
