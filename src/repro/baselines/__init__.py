"""Baseline methods the paper compares TER-iDS against."""

from repro.baselines.naive import (
    BaselineReport,
    NestedLoopMatcher,
    StraightforwardTERiDS,
)
from repro.baselines.pipelines import (
    ACCURACY_BASELINES,
    ALL_BASELINES,
    BASELINE_FACTORIES,
    METHOD_CDD_ER,
    METHOD_CON_ER,
    METHOD_DD_ER,
    METHOD_ER_ER,
    METHOD_IJ_GER,
    METHOD_TER_IDS,
    IndexedSequentialPipeline,
    build_baseline,
    build_cdd_er_pipeline,
    build_con_er_pipeline,
    build_dd_er_pipeline,
    build_er_er_pipeline,
)

__all__ = [
    "ACCURACY_BASELINES",
    "ALL_BASELINES",
    "BASELINE_FACTORIES",
    "BaselineReport",
    "IndexedSequentialPipeline",
    "METHOD_CDD_ER",
    "METHOD_CON_ER",
    "METHOD_DD_ER",
    "METHOD_ER_ER",
    "METHOD_IJ_GER",
    "METHOD_TER_IDS",
    "NestedLoopMatcher",
    "StraightforwardTERiDS",
    "build_baseline",
    "build_cdd_er_pipeline",
    "build_con_er_pipeline",
    "build_dd_er_pipeline",
    "build_er_er_pipeline",
]
