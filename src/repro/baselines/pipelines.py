"""The five baseline pipelines of the evaluation (Section 6.1).

* ``Ij+GER`` — CDD imputation accelerated by the CDD-index and DR-index,
  entity resolution through the ER-grid, but *sequentially* (no index join
  and no Theorems 4.2–4.4 refinement bounds);
* ``CDD+ER`` — CDD imputation with full repository scans, nested-loop ER;
* ``DD+ER``  — DD-rule imputation (looser constraints, more instances),
  nested-loop ER;
* ``er+ER``  — editing-rule imputation, nested-loop ER;
* ``con+ER`` — constraint-based (stream-neighbour) imputation, nested-loop
  ER; never touches the repository.

Every pipeline shares the :class:`~repro.baselines.naive.StraightforwardTERiDS`
skeleton except ``Ij+GER``, which uses the grid-backed matcher below.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional

from repro.baselines.naive import BaselineReport, StraightforwardTERiDS
from repro.core.config import TERiDSConfig
from repro.core.matching import EntityResultSet, MatchPair, ter_ids_probability
from repro.core.pruning import RecordSynopsis
from repro.core.stream import SlidingWindow
from repro.core.tuples import ImputedRecord, Record
from repro.imputation.cdd import CDDDiscoveryConfig, discover_cdd_rules
from repro.imputation.constraint import StreamConstraintImputer
from repro.imputation.dd import DDDiscoveryConfig, discover_dd_rules
from repro.imputation.editing import EditingRuleImputer, discover_editing_rules
from repro.imputation.imputer import CDDImputer, make_dd_imputer
from repro.imputation.repository import DataRepository
from repro.indexes.cdd_index import build_cdd_indexes
from repro.indexes.dr_index import DRIndex
from repro.indexes.er_grid import ERGrid
from repro.indexes.pivots import PivotSelectionConfig, select_pivots

#: Method names as reported in the paper's figures.
METHOD_TER_IDS = "TER-iDS"
METHOD_IJ_GER = "Ij+GER"
METHOD_CDD_ER = "CDD+ER"
METHOD_DD_ER = "DD+ER"
METHOD_ER_ER = "er+ER"
METHOD_CON_ER = "con+ER"

ALL_BASELINES = (METHOD_IJ_GER, METHOD_CDD_ER, METHOD_DD_ER, METHOD_ER_ER,
                 METHOD_CON_ER)
ACCURACY_BASELINES = (METHOD_DD_ER, METHOD_ER_ER, METHOD_CON_ER)


class IndexedSequentialPipeline:
    """The ``Ij+GER`` baseline: indexes used, but imputation and ER run
    sequentially and candidates are verified with the exact probability only
    (no similarity / probability upper-bound pruning)."""

    def __init__(self, repository: DataRepository, config: TERiDSConfig,
                 discovery_config: Optional[CDDDiscoveryConfig] = None) -> None:
        self.config = config
        self.repository = repository
        self.pivots = select_pivots(repository, PivotSelectionConfig(
            buckets=config.entropy_buckets,
            min_entropy=config.min_entropy,
            max_pivots=config.max_pivots,
        ))
        self.rules = discover_cdd_rules(repository, discovery_config)
        self.cdd_indexes = build_cdd_indexes(self.rules, config.schema, self.pivots)
        self.dr_index = DRIndex(repository, self.pivots, keywords=config.keywords)
        self.imputer = CDDImputer(repository=repository, rules=self.rules,
                                  sample_retriever=self.dr_index.make_retriever())
        self.grid = ERGrid(config.schema, cells_per_dim=config.grid_cells_per_dim)
        self.windows: Dict[str, SlidingWindow] = {}
        self.result_set = EntityResultSet()
        self.timestamps_processed = 0
        self.pairs_evaluated = 0
        self.imputation_seconds = 0.0
        self.er_seconds = 0.0

    def _window_for(self, source: str) -> SlidingWindow:
        window = self.windows.get(source)
        if window is None:
            window = SlidingWindow(capacity=self.config.window_size)
            self.windows[source] = window
        return window

    def _impute_with_index(self, record: Record) -> ImputedRecord:
        """CDD-index-guided rule selection followed by Eq. (4) imputation."""
        missing = record.missing_attributes(self.config.schema)
        if not missing:
            return ImputedRecord.from_complete(record, self.config.schema)
        candidates: Dict[str, Dict[str, float]] = {}
        for attribute in missing:
            index = self.cdd_indexes.get(attribute)
            rules = index.candidate_rules(record) if index else []
            if not rules:
                continue
            scoped = CDDImputer(repository=self.repository, rules=rules,
                                sample_retriever=self.dr_index.make_retriever())
            distribution = scoped.candidate_distribution(record, attribute)
            if distribution:
                candidates[attribute] = distribution
        return ImputedRecord(base=record, schema=self.config.schema,
                             candidates=candidates)

    def process(self, record: Record) -> List[MatchPair]:
        self.timestamps_processed += 1
        window = self._window_for(record.source)
        if window.is_full:
            oldest = window.items()[0]
            self.grid.remove(oldest.record.rid, oldest.record.source)
            self.result_set.remove_record(oldest.record.rid, oldest.record.source)

        start = time.perf_counter()
        imputed = self._impute_with_index(record)
        synopsis = RecordSynopsis.build(imputed, self.pivots, self.config.keywords)
        self.imputation_seconds += time.perf_counter() - start

        start = time.perf_counter()
        matches: List[MatchPair] = []
        candidates = self.grid.candidate_synopses(
            synopsis, gamma=self.config.gamma, keywords=self.config.keywords,
            exclude_source=record.source)
        for candidate in candidates:
            self.pairs_evaluated += 1
            probability = ter_ids_probability(imputed, candidate.record,
                                              self.config.keywords,
                                              self.config.gamma)
            if probability > self.config.alpha:
                pair = MatchPair(
                    left_rid=record.rid, left_source=record.source,
                    right_rid=candidate.record.rid,
                    right_source=candidate.record.source,
                    probability=probability, timestamp=record.timestamp)
                matches.append(pair)
                self.result_set.add(pair)
        window.insert(synopsis)
        self.grid.insert(synopsis)
        self.er_seconds += time.perf_counter() - start
        return matches

    def run(self, records: Iterable[Record]) -> BaselineReport:
        start = time.perf_counter()
        matches: List[MatchPair] = []
        for record in records:
            matches.extend(self.process(record))
        total = time.perf_counter() - start
        return BaselineReport(
            method=METHOD_IJ_GER,
            matches=matches,
            timestamps_processed=self.timestamps_processed,
            total_seconds=total,
            pairs_evaluated=self.pairs_evaluated,
            imputation_seconds=self.imputation_seconds,
            er_seconds=self.er_seconds,
        )


def build_cdd_er_pipeline(repository: DataRepository, config: TERiDSConfig,
                          discovery_config: Optional[CDDDiscoveryConfig] = None
                          ) -> StraightforwardTERiDS:
    """``CDD+ER``: CDD imputation via repository scans, nested-loop ER."""
    rules = discover_cdd_rules(repository, discovery_config)
    imputer = CDDImputer(repository=repository, rules=rules)
    return StraightforwardTERiDS(config=config, imputer=imputer,
                                 method_name=METHOD_CDD_ER)


def build_dd_er_pipeline(repository: DataRepository, config: TERiDSConfig,
                         discovery_config: Optional[DDDiscoveryConfig] = None
                         ) -> StraightforwardTERiDS:
    """``DD+ER``: differential-dependency imputation, nested-loop ER."""
    rules = discover_dd_rules(repository, discovery_config)
    imputer = make_dd_imputer(repository, rules)
    return StraightforwardTERiDS(config=config, imputer=imputer,
                                 method_name=METHOD_DD_ER)


def build_er_er_pipeline(repository: DataRepository,
                         config: TERiDSConfig) -> StraightforwardTERiDS:
    """``er+ER``: editing-rule imputation, nested-loop ER."""
    rules = discover_editing_rules(repository)
    imputer = EditingRuleImputer(repository=repository, rules=rules)
    return StraightforwardTERiDS(config=config, imputer=imputer,
                                 method_name=METHOD_ER_ER)


def build_con_er_pipeline(repository: DataRepository,
                          config: TERiDSConfig) -> StraightforwardTERiDS:
    """``con+ER``: stream-neighbour imputation (repository never accessed)."""
    imputer = StreamConstraintImputer(schema=config.schema)
    return StraightforwardTERiDS(config=config, imputer=imputer,
                                 method_name=METHOD_CON_ER, observe_stream=True)


#: Factory registry keyed by the paper's method names.
BASELINE_FACTORIES: Dict[str, Callable[..., object]] = {
    METHOD_IJ_GER: IndexedSequentialPipeline,
    METHOD_CDD_ER: build_cdd_er_pipeline,
    METHOD_DD_ER: build_dd_er_pipeline,
    METHOD_ER_ER: build_er_er_pipeline,
    METHOD_CON_ER: build_con_er_pipeline,
}


def build_baseline(method: str, repository: DataRepository,
                   config: TERiDSConfig):
    """Instantiate one baseline pipeline by its paper name."""
    if method not in BASELINE_FACTORIES:
        raise KeyError(f"unknown baseline {method!r}; available: {ALL_BASELINES}")
    factory = BASELINE_FACTORIES[method]
    return factory(repository, config)
