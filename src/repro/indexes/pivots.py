"""Cost-model-based pivot tuple selection (Section 5.4, Appendix B).

Textual attribute values are converted to numeric coordinates by taking
their Jaccard distance to per-attribute *pivot values*.  The first pivot of
each attribute (the *main pivot* ``piv_1[A_x]``) defines the coordinate used
by the DR-index and the ER-grid; the remaining *auxiliary pivots* provide
extra distance aggregates used to tighten the pruning bounds.

A good pivot spreads the converted values evenly over ``[0, 1]``; the cost
model measures this with the Shannon entropy of the bucketised distance
distribution (Equation (5)) and selects, per attribute, the fewest pivots
(up to ``cntMax``) whose combined entropy reaches the threshold ``eMin``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.similarity import text_distance
from repro.core.tuples import Record, Schema
from repro.imputation.repository import DataRepository


def shannon_entropy(distances: Sequence[float], buckets: int) -> float:
    """Equation (5): entropy of the bucketised converted-value distribution."""
    if not distances or buckets < 2:
        return 0.0
    counts = [0] * buckets
    for distance in distances:
        index = min(buckets - 1, max(0, int(distance * buckets)))
        counts[index] += 1
    total = len(distances)
    entropy = 0.0
    for count in counts:
        if count:
            p = count / total
            entropy -= p * math.log(p)
    return entropy


@dataclass(frozen=True)
class PivotSelectionReport:
    """Diagnostics of the pivot selection for one attribute."""

    attribute: str
    pivots: Tuple[str, ...]
    entropies: Tuple[float, ...]
    candidates_evaluated: int

    @property
    def main_entropy(self) -> float:
        return self.entropies[0] if self.entropies else 0.0


@dataclass
class PivotTable:
    """Selected pivot values per attribute.

    ``pivots[attribute][0]`` is the main pivot; the remaining entries are
    auxiliary pivots (at most ``cntMax - 1`` of them).
    """

    schema: Schema
    pivots: Dict[str, List[str]]
    reports: Dict[str, PivotSelectionReport] = field(default_factory=dict)
    #: Memo of ``pivot_distances``: the pivot values are immutable for the
    #: lifetime of the table, so the distance of a constant to an attribute's
    #: pivots can be computed once and reused by every CDD-index build and
    #: patch (the same rule constants recur across installs).
    _distance_cache: Dict[Tuple[str, str], Tuple[float, ...]] = field(
        default_factory=dict, repr=False, compare=False)

    def main_pivot(self, attribute: str) -> str:
        """The main pivot value ``piv_1[A_x]``."""
        return self.pivots[attribute][0]

    def pivot_distances(self, attribute: str, value: str) -> Tuple[float, ...]:
        """Distances of ``value`` to all of ``attribute``'s pivots, memoised.

        Element 0 is the main-pivot coordinate; the remainder are the
        auxiliary-pivot distances.  The memo is keyed by ``(attribute,
        value)`` and is sound because the pivot lists never change after
        selection.
        """
        key = (attribute, value)
        distances = self._distance_cache.get(key)
        if distances is None:
            distances = tuple(text_distance(value, pivot_value)
                              for pivot_value in self.pivots[attribute])
            self._distance_cache[key] = distances
        return distances

    def auxiliary_pivots(self, attribute: str) -> List[str]:
        """Auxiliary pivot values ``piv_a[A_x]`` for ``a >= 2``."""
        return self.pivots[attribute][1:]

    def pivot_count(self, attribute: str) -> int:
        """Number of pivots ``n_x`` selected for one attribute."""
        return len(self.pivots[attribute])

    def all_pivots(self, attribute: str) -> List[str]:
        """Main pivot followed by auxiliary pivots."""
        return list(self.pivots[attribute])

    def convert_value(self, attribute: str, value: Optional[str],
                      pivot_index: int = 0) -> float:
        """Jaccard distance from ``value`` to the selected pivot.

        A missing value converts to ``1.0`` (maximally far from any pivot) so
        that unimputable attributes never shrink a distance lower bound.
        """
        if value is None:
            return 1.0
        pivot_values = self.pivots[attribute]
        index = min(pivot_index, len(pivot_values) - 1)
        return text_distance(value, pivot_values[index])

    def convert_record(self, record: Record, pivot_index: int = 0) -> List[float]:
        """Convert a complete record into its d-dimensional coordinates."""
        return [self.convert_value(name, record[name], pivot_index)
                for name in self.schema]


@dataclass(frozen=True)
class PivotSelectionConfig:
    """Knobs of the cost-model-based pivot selection (Appendix B)."""

    buckets: int = 10
    min_entropy: float = 1.5
    max_pivots: int = 3
    max_candidates: int = 200


def _candidate_entropies(repository: DataRepository, attribute: str,
                         config: PivotSelectionConfig) -> List[Tuple[float, str]]:
    """Entropy of every candidate pivot value (best first)."""
    domain = repository.domain(attribute)[: config.max_candidates]
    values = repository.values(attribute)
    scored: List[Tuple[float, str]] = []
    for candidate in domain:
        distances = [text_distance(value, candidate) for value in values]
        scored.append((shannon_entropy(distances, config.buckets), candidate))
    scored.sort(key=lambda item: (-item[0], item[1]))
    return scored


def select_pivots(repository: DataRepository,
                  config: Optional[PivotSelectionConfig] = None) -> PivotTable:
    """Select pivot values for every attribute of the repository schema.

    For each attribute the candidate with maximal entropy becomes the main
    pivot; auxiliary pivots are added greedily (next-highest entropy) until
    either the summed entropy reaches ``min_entropy`` or ``max_pivots``
    pivots have been chosen — the stopping rule of Appendix B.
    """
    config = config or PivotSelectionConfig()
    if len(repository) == 0:
        raise ValueError("cannot select pivots from an empty repository")

    pivots: Dict[str, List[str]] = {}
    reports: Dict[str, PivotSelectionReport] = {}
    for attribute in repository.schema:
        scored = _candidate_entropies(repository, attribute, config)
        if not scored:
            raise ValueError(f"attribute {attribute!r} has an empty domain")
        chosen: List[str] = []
        entropies: List[float] = []
        cumulative = 0.0
        for entropy, candidate in scored:
            chosen.append(candidate)
            entropies.append(entropy)
            cumulative += entropy
            if cumulative >= config.min_entropy or len(chosen) >= config.max_pivots:
                break
        pivots[attribute] = chosen
        reports[attribute] = PivotSelectionReport(
            attribute=attribute,
            pivots=tuple(chosen),
            entropies=tuple(entropies),
            candidates_evaluated=len(scored),
        )
    return PivotTable(schema=repository.schema, pivots=pivots, reports=reports)


def pivot_selection_cost(repository: DataRepository,
                         config: Optional[PivotSelectionConfig] = None) -> int:
    """Number of distance evaluations the selection performs (cost model size).

    Used by the Figure 11 benches to report how the offline pivot-selection
    cost scales with the repository size and with ``cntMax``.
    """
    config = config or PivotSelectionConfig()
    evaluations = 0
    for attribute in repository.schema:
        domain = min(repository.domain_size(attribute), config.max_candidates)
        evaluations += domain * len(repository)
    return evaluations
