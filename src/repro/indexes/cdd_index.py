"""The CDD-index ``I_j`` over CDD rules (Section 5.1, Figure 2).

For every dependent attribute ``A_j`` the index organises the rules
``X_f → A_j`` into

* a **lattice** whose Level-1 nodes group the rules by determinant attribute
  set and whose higher levels hold combined rules (unions of determinant
  sets) with merged dependent intervals — these coarse combined rules seed
  the index join with wide query ranges that are tightened while descending;
* per-group **aR-trees** indexing each rule's determinant constraints in the
  pivot-converted space: constant constraints become the Jaccard distance of
  the constant to the attribute's main pivot, interval constraints keep their
  interval, and missing attributes are encoded as ``[-1, -1]`` (excluded from
  pruning).  Leaf aggregates carry the rule's dependent interval and the
  distances of constants to the auxiliary pivots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.core.similarity import text_distance
from repro.core.tuples import Record, Schema
from repro.imputation.cdd import (
    CONSTRAINT_CONSTANT,
    CONSTRAINT_INTERVAL,
    CDDRule,
    group_rules_by_dependent,
)
from repro.indexes.artree import Aggregator, ARTree, Rect
from repro.indexes.pivots import PivotTable

#: Coordinate used for the "missing attribute" constraint in the converted
#: space; it is outside [0, 1] so it never interferes with real constraints.
MISSING_COORDINATE = -1.0


@dataclass(frozen=True)
class CDDLeafAggregate:
    """Leaf aggregate of the CDD-index aR-tree.

    * ``dependent_interval`` — the rule's ``A_j.I``;
    * ``auxiliary_distances`` — per determinant attribute, the distance of a
      constant constraint to the auxiliary pivots (empty for interval
      constraints).
    """

    dependent_interval: Tuple[float, float]
    auxiliary_distances: Tuple[Tuple[str, Tuple[float, ...]], ...] = ()


@dataclass(frozen=True)
class CDDNodeAggregate:
    """Non-leaf aggregate: the minimal interval bounding all dependent intervals."""

    dependent_interval: Tuple[float, float]


def _merge_aggregates(left, right):
    """Merge two (leaf or node) aggregates into a bounding node aggregate."""
    low = min(left.dependent_interval[0], right.dependent_interval[0])
    high = max(left.dependent_interval[1], right.dependent_interval[1])
    return CDDNodeAggregate(dependent_interval=(low, high))


@dataclass
class LatticeNode:
    """One node of the CDD-index lattice: a determinant attribute set."""

    attributes: Tuple[str, ...]
    level: int
    rules: List[CDDRule] = field(default_factory=list)
    combined_interval: Tuple[float, float] = (0.0, 1.0)

    def recompute_interval(self) -> None:
        """Minimal interval bounding the dependent intervals of the node's rules."""
        if not self.rules:
            self.combined_interval = (0.0, 1.0)
            return
        low = min(rule.dependent_interval[0] for rule in self.rules)
        high = max(rule.dependent_interval[1] for rule in self.rules)
        self.combined_interval = (low, high)


class CDDIndex:
    """Index over the CDD rules of one dependent attribute ``A_j``."""

    def __init__(self, dependent: str, rules: Sequence[CDDRule], schema: Schema,
                 pivots: PivotTable, max_entries: int = 8) -> None:
        self.dependent = dependent
        self.schema = schema
        self.pivots = pivots
        self.rules = [rule for rule in rules if rule.dependent == dependent]
        self.lattice: Dict[Tuple[str, ...], LatticeNode] = {}
        self._trees: Dict[Tuple[str, ...], ARTree] = {}
        self._max_entries = max_entries
        self.nodes_visited = 0
        self._build()

    # -- construction ----------------------------------------------------------
    def _rule_rect(self, rule: CDDRule, attributes: Tuple[str, ...]) -> Rect:
        """Encode one rule's determinant constraints as a rectangle."""
        intervals: List[Tuple[float, float]] = []
        for attribute in attributes:
            constraint = rule.constraint_for(attribute)
            if constraint is None:
                intervals.append((MISSING_COORDINATE, MISSING_COORDINATE))
            elif constraint.kind == CONSTRAINT_CONSTANT:
                assert constraint.constant is not None
                coordinate = text_distance(constraint.constant,
                                           self.pivots.main_pivot(attribute))
                intervals.append((coordinate, coordinate))
            elif constraint.kind == CONSTRAINT_INTERVAL:
                intervals.append(constraint.interval)
            else:
                intervals.append((MISSING_COORDINATE, MISSING_COORDINATE))
        return Rect.from_intervals(intervals)

    def _leaf_aggregate(self, rule: CDDRule) -> CDDLeafAggregate:
        auxiliary: List[Tuple[str, Tuple[float, ...]]] = []
        for constraint in rule.determinants:
            if constraint.kind == CONSTRAINT_CONSTANT and constraint.constant:
                distances = tuple(
                    text_distance(constraint.constant, pivot_value)
                    for pivot_value in self.pivots.auxiliary_pivots(constraint.attribute)
                )
                auxiliary.append((constraint.attribute, distances))
        return CDDLeafAggregate(dependent_interval=rule.dependent_interval,
                                auxiliary_distances=tuple(auxiliary))

    def _build(self) -> None:
        # Level-1 lattice nodes: one per distinct determinant attribute set.
        for rule in self.rules:
            key = tuple(sorted(rule.determinant_attributes))
            node = self.lattice.get(key)
            if node is None:
                node = LatticeNode(attributes=key, level=len(key))
                self.lattice[key] = node
            node.rules.append(rule)
        for node in self.lattice.values():
            node.recompute_interval()

        # Combined (higher-level) lattice nodes: unions of level-1 sets.  Only
        # the full union is materialised (the paper's top level); intermediate
        # combinations are represented implicitly through the group trees.
        level_one = [node for node in self.lattice.values()]
        if len(level_one) > 1:
            union_attributes = tuple(sorted({
                attribute for node in level_one for attribute in node.attributes}))
            if union_attributes not in self.lattice:
                top = LatticeNode(attributes=union_attributes,
                                  level=len(union_attributes))
                top.rules = list(self.rules)
                top.recompute_interval()
                self.lattice[union_attributes] = top

        # Per-group aR-trees over the level-1 nodes.
        aggregator = Aggregator(
            from_payload=lambda rect, payload: self._leaf_aggregate(payload),
            merge=_merge_aggregates,
        )
        for key, node in self.lattice.items():
            if node.level != len(key) or not node.rules:
                continue
            if key == tuple(sorted({a for n in self.lattice.values()
                                    for a in n.attributes})) and len(self.lattice) > 1:
                # The synthetic top-level union node has no tree of its own.
                if not any(tuple(sorted(r.determinant_attributes)) == key
                           for r in node.rules):
                    continue
            tree = ARTree(dimensions=len(key), max_entries=self._max_entries,
                          aggregator=aggregator)
            for rule in node.rules:
                if tuple(sorted(rule.determinant_attributes)) != key:
                    continue
                tree.insert(self._rule_rect(rule, key), rule)
            if len(tree):
                self._trees[key] = tree

    # -- statistics --------------------------------------------------------------
    @property
    def rule_count(self) -> int:
        return len(self.rules)

    @property
    def group_count(self) -> int:
        return len(self._trees)

    def lattice_levels(self) -> Dict[int, List[LatticeNode]]:
        """Lattice nodes grouped by level (Figure 2 layout)."""
        levels: Dict[int, List[LatticeNode]] = {}
        for node in self.lattice.values():
            levels.setdefault(node.level, []).append(node)
        return levels

    def combined_dependent_interval(self) -> Tuple[float, float]:
        """Coarsest dependent interval over all rules (root of the lattice)."""
        if not self.rules:
            return (0.0, 1.0)
        low = min(rule.dependent_interval[0] for rule in self.rules)
        high = max(rule.dependent_interval[1] for rule in self.rules)
        return low, high

    # -- queries ------------------------------------------------------------------
    def _record_coordinates(self, record: Record,
                            attributes: Tuple[str, ...]) -> List[Optional[float]]:
        """Main-pivot coordinates of the record on the group's attributes."""
        coordinates: List[Optional[float]] = []
        for attribute in attributes:
            value = record[attribute]
            if value is None:
                coordinates.append(None)
            else:
                coordinates.append(
                    text_distance(value, self.pivots.main_pivot(attribute)))
        return coordinates

    def candidate_rules(self, record: Record,
                        tolerance: float = 1e-6) -> List[CDDRule]:
        """Rules whose indexed constraints may apply to ``record``.

        The aR-trees are traversed top-down; a node is pruned when, on some
        dimension, its MBR holds only constant constraints (degenerate
        coordinates) that cannot equal the record's converted coordinate.
        Interval constraints always pass the index test and are verified
        exactly afterwards.  The returned rules are then filtered with the
        exact :meth:`CDDRule.applicable_to` check, so no false positives
        escape; the index only avoids scanning obviously irrelevant rules.
        """
        self.nodes_visited = 0
        candidates: List[CDDRule] = []
        for key, tree in self._trees.items():
            coordinates = self._record_coordinates(record, key)
            if any(coordinate is None for coordinate in coordinates):
                # A determinant attribute is missing in the record: the
                # group's rules cannot be evaluated, skip the whole tree.
                continue

            def node_filter(rect: Rect, aggregate, coords=coordinates) -> bool:
                for dim, coordinate in enumerate(coords):
                    low = rect.mins[dim]
                    high = rect.maxs[dim]
                    if low == high and low >= 0.0:
                        # All entries below use (or bound) a degenerate
                        # constant coordinate on this dimension.
                        if abs(coordinate - low) > tolerance and low != MISSING_COORDINATE:
                            # Cannot prune purely on equality unless the MBR
                            # is degenerate AND the record coordinate differs.
                            return False
                return True

            entries, visited = tree.traverse(node_filter)
            self.nodes_visited += visited
            for entry in entries:
                rule: CDDRule = entry.payload
                if rule.applicable_to(record, self.dependent):
                    candidates.append(rule)
        # Tightest rules first, mirroring the imputer's preference.
        candidates.sort(key=lambda rule: (rule.dependent_width, -rule.support))
        return candidates


def build_cdd_indexes(rules: Iterable[CDDRule], schema: Schema,
                      pivots: PivotTable, max_entries: int = 8) -> Dict[str, CDDIndex]:
    """Build one CDD-index per dependent attribute (``I_j`` for each ``A_j``)."""
    grouped = group_rules_by_dependent(rules)
    return {
        dependent: CDDIndex(dependent=dependent, rules=dependent_rules,
                            schema=schema, pivots=pivots, max_entries=max_entries)
        for dependent, dependent_rules in grouped.items()
    }
