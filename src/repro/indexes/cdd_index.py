"""The CDD-index ``I_j`` over CDD rules (Section 5.1, Figure 2).

For every dependent attribute ``A_j`` the index organises the rules
``X_f → A_j`` into

* a **lattice** whose Level-1 nodes group the rules by determinant attribute
  set and whose higher levels hold combined rules (unions of determinant
  sets) with merged dependent intervals — these coarse combined rules seed
  the index join with wide query ranges that are tightened while descending;
* per-group **aR-trees** indexing each rule's determinant constraints in the
  pivot-converted space: constant constraints become the Jaccard distance of
  the constant to the attribute's main pivot, interval constraints keep their
  interval, and missing attributes are encoded as ``[-1, -1]`` (excluded from
  pruning).  Leaf aggregates carry the rule's dependent interval and the
  distances of constants to the auxiliary pivots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (Collection, Dict, FrozenSet, Iterable, List, Optional,
                    Sequence, Tuple)

from repro.core.similarity import text_distance
from repro.core.tuples import Record, Schema
from repro.imputation.cdd import (
    CONSTRAINT_CONSTANT,
    CONSTRAINT_INTERVAL,
    CDDRule,
    group_rules_by_dependent,
)
from repro.indexes.artree import Aggregator, ARTree, Rect
from repro.indexes.pivots import PivotTable

#: Coordinate used for the "missing attribute" constraint in the converted
#: space; it is outside [0, 1] so it never interferes with real constraints.
MISSING_COORDINATE = -1.0


@dataclass(frozen=True)
class CDDLeafAggregate:
    """Leaf aggregate of the CDD-index aR-tree.

    * ``dependent_interval`` — the rule's ``A_j.I``;
    * ``auxiliary_distances`` — per determinant attribute, the distance of a
      constant constraint to the auxiliary pivots (empty for interval
      constraints).
    """

    dependent_interval: Tuple[float, float]
    auxiliary_distances: Tuple[Tuple[str, Tuple[float, ...]], ...] = ()


@dataclass(frozen=True)
class CDDNodeAggregate:
    """Non-leaf aggregate: the minimal interval bounding all dependent intervals."""

    dependent_interval: Tuple[float, float]


def _merge_aggregates(left, right):
    """Merge two (leaf or node) aggregates into a bounding node aggregate."""
    low = min(left.dependent_interval[0], right.dependent_interval[0])
    high = max(left.dependent_interval[1], right.dependent_interval[1])
    return CDDNodeAggregate(dependent_interval=(low, high))


@dataclass
class LatticeNode:
    """One node of the CDD-index lattice: a determinant attribute set."""

    attributes: Tuple[str, ...]
    level: int
    rules: List[CDDRule] = field(default_factory=list)
    combined_interval: Tuple[float, float] = (0.0, 1.0)

    def recompute_interval(self) -> None:
        """Minimal interval bounding the dependent intervals of the node's rules."""
        if not self.rules:
            self.combined_interval = (0.0, 1.0)
            return
        low = min(rule.dependent_interval[0] for rule in self.rules)
        high = max(rule.dependent_interval[1] for rule in self.rules)
        self.combined_interval = (low, high)


@dataclass
class CDDPatchStats:
    """What :meth:`CDDIndex.apply_diff` did, group by group."""

    groups_untouched: int = 0
    groups_patched: int = 0
    groups_replayed: int = 0
    groups_added: int = 0
    groups_removed: int = 0
    entries_updated: int = 0
    entries_inserted: int = 0
    entries_removed: int = 0

    def merge(self, other: "CDDPatchStats") -> None:
        for name in self.__dataclass_fields__:
            setattr(self, name, getattr(self, name) + getattr(other, name))

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__dataclass_fields__}


class CDDIndex:
    """Index over the CDD rules of one dependent attribute ``A_j``."""

    def __init__(self, dependent: str, rules: Sequence[CDDRule], schema: Schema,
                 pivots: PivotTable, max_entries: int = 8) -> None:
        self.dependent = dependent
        self.schema = schema
        self.pivots = pivots
        self.rules = [rule for rule in rules if rule.dependent == dependent]
        self.lattice: Dict[Tuple[str, ...], LatticeNode] = {}
        self._trees: Dict[Tuple[str, ...], ARTree] = {}
        self._max_entries = max_entries
        self._top_union_key: Optional[Tuple[str, ...]] = None
        self._aggregator = Aggregator(
            from_payload=lambda rect, payload: self._leaf_aggregate(payload),
            merge=_merge_aggregates,
        )
        self.nodes_visited = 0
        self._build()

    # -- construction ----------------------------------------------------------
    def _rule_rect(self, rule: CDDRule, attributes: Tuple[str, ...]) -> Rect:
        """Encode one rule's determinant constraints as a rectangle."""
        intervals: List[Tuple[float, float]] = []
        for attribute in attributes:
            constraint = rule.constraint_for(attribute)
            if constraint is None:
                intervals.append((MISSING_COORDINATE, MISSING_COORDINATE))
            elif constraint.kind == CONSTRAINT_CONSTANT:
                assert constraint.constant is not None
                coordinate = self.pivots.pivot_distances(
                    attribute, constraint.constant)[0]
                intervals.append((coordinate, coordinate))
            elif constraint.kind == CONSTRAINT_INTERVAL:
                intervals.append(constraint.interval)
            else:
                intervals.append((MISSING_COORDINATE, MISSING_COORDINATE))
        return Rect.from_intervals(intervals)

    def _leaf_aggregate(self, rule: CDDRule) -> CDDLeafAggregate:
        auxiliary: List[Tuple[str, Tuple[float, ...]]] = []
        for constraint in rule.determinants:
            if constraint.kind == CONSTRAINT_CONSTANT and constraint.constant:
                distances = self.pivots.pivot_distances(
                    constraint.attribute, constraint.constant)[1:]
                auxiliary.append((constraint.attribute, distances))
        return CDDLeafAggregate(dependent_interval=rule.dependent_interval,
                                auxiliary_distances=tuple(auxiliary))

    @staticmethod
    def _group_in_order(rules: Sequence[CDDRule]
                        ) -> Dict[Tuple[str, ...], List[CDDRule]]:
        """Rules per determinant attribute set, keys in first-appearance order."""
        groups: Dict[Tuple[str, ...], List[CDDRule]] = {}
        for rule in rules:
            key = tuple(sorted(rule.determinant_attributes))
            groups.setdefault(key, []).append(rule)
        return groups

    def _make_tree(self, key: Tuple[str, ...],
                   rules_in_order: Sequence[CDDRule]) -> ARTree:
        """Build one group tree; the single constructor shared by cold builds
        and patch-path replays, so both produce identical structures."""
        tree = ARTree(dimensions=len(key), max_entries=self._max_entries,
                      aggregator=self._aggregator)
        tree.bulk_load((self._rule_rect(rule, key), rule)
                       for rule in rules_in_order)
        return tree

    def _install_lattice(self, groups: Dict[Tuple[str, ...], List[CDDRule]],
                         reuse_nodes: Optional[Dict[Tuple[str, ...],
                                                    LatticeNode]] = None) -> None:
        """(Re)build the lattice dict for the given level-1 groups.

        Level-1 nodes appear in group first-appearance order; when the
        groups span more than one determinant set, a synthetic top-level
        union node over all rules is appended — unless some group already
        covers exactly the union attribute set.
        """
        reuse_nodes = reuse_nodes or {}
        self.lattice = {}
        self._top_union_key = None
        for key, own_rules in groups.items():
            node = reuse_nodes.get(key)
            if node is None:
                node = LatticeNode(attributes=key, level=len(key),
                                   rules=list(own_rules))
                node.recompute_interval()
            self.lattice[key] = node
        if len(groups) > 1:
            union_attributes = tuple(sorted({
                attribute for key in groups for attribute in key}))
            if union_attributes not in self.lattice:
                top = LatticeNode(attributes=union_attributes,
                                  level=len(union_attributes))
                top.rules = list(self.rules)
                top.recompute_interval()
                self.lattice[union_attributes] = top
                self._top_union_key = union_attributes

    def _build(self) -> None:
        groups = self._group_in_order(self.rules)
        self._install_lattice(groups)
        self._trees = {}
        for key, own_rules in groups.items():
            tree = self._make_tree(key, own_rules)
            if len(tree):
                self._trees[key] = tree

    # -- incremental maintenance -------------------------------------------------
    def apply_diff(self, promoted: Sequence[CDDRule], retired: Collection[str],
                   widened: Sequence[CDDRule],
                   rules: Sequence[CDDRule]) -> CDDPatchStats:
        """Patch the index in place from a rule diff instead of rebuilding.

        ``promoted`` / ``retired`` (rule ids) / ``widened`` describe the
        maintainer's diff; ``rules`` is the full post-diff rule list in the
        maintainer's canonical emission order, which fixes the group and
        in-group ordering the patched index must reproduce.  The patched
        index is bit-identical to ``CDDIndex(dependent, rules, ...)``:
        identical tree structures (hence ``nodes_visited``), identical
        candidate-rule order, identical aggregates and lattice intervals.

        Per group (determinant attribute set):

        * value-identical rule lists keep their tree and lattice node
          untouched;
        * same membership and order with only dependent-interval / support
          changes (the widen case — a rule id's rectangle never changes)
          are patched strictly in place via :meth:`ARTree.update`;
        * single-leaf trees whose surviving rules keep their relative order
          and whose additions sit at the tail absorb the diff through
          :meth:`ARTree.remove` / :meth:`ARTree.insert`;
        * anything else (reordering, deep trees gaining/losing members) is
          replayed group-locally through the shared tree constructor — with
          pivot coordinates memoised, a replay is pure tree packing.

        Untouched groups are never rebuilt; only touched lattice intervals
        and the synthetic top-level union are recomputed.
        """
        retired_ids = {item if isinstance(item, str) else item.rule_id
                       for item in retired}
        del promoted, widened  # diff is re-derived per group from the lists
        new_rules = [rule for rule in rules if rule.dependent == self.dependent]
        old_groups = self._group_in_order(self.rules)
        new_groups = self._group_in_order(new_rules)
        stats = CDDPatchStats()

        new_trees: Dict[Tuple[str, ...], ARTree] = {}
        reuse_nodes: Dict[Tuple[str, ...], LatticeNode] = {}
        for key, new_list in new_groups.items():
            old_list = old_groups.get(key, [])
            tree = self._trees.get(key)
            if old_list == new_list and tree is not None:
                stats.groups_untouched += 1
                new_trees[key] = tree
                node = self.lattice.get(key)
                if node is not None and key != self._top_union_key:
                    reuse_nodes[key] = node
                continue
            if not old_list:
                stats.groups_added += 1
                stats.entries_inserted += len(new_list)
                new_trees[key] = self._make_tree(key, new_list)
                continue
            patched = (tree is not None
                       and self._patch_group(tree, key, old_list, new_list,
                                             retired_ids, stats))
            if not patched:
                stats.groups_replayed += 1
                new_trees[key] = self._make_tree(key, new_list)
            else:
                new_trees[key] = tree  # type: ignore[assignment]
        stats.groups_removed += sum(1 for key in old_groups
                                    if key not in new_groups)

        self.rules = new_rules
        self._trees = new_trees
        self._install_lattice(new_groups, reuse_nodes=reuse_nodes)
        return stats

    def _patch_group(self, tree: ARTree, key: Tuple[str, ...],
                     old_list: Sequence[CDDRule], new_list: Sequence[CDDRule],
                     retired_ids: Collection[str],
                     stats: CDDPatchStats) -> bool:
        """Absorb one group's diff into its existing tree, in place.

        Returns ``False`` when no in-place transformation can provably match
        a fresh rebuild (the caller then replays the group).
        """
        old_ids = [rule.rule_id for rule in old_list]
        new_ids = [rule.rule_id for rule in new_list]
        new_by_id = {rule.rule_id: rule for rule in new_list}
        old_by_id = {rule.rule_id: rule for rule in old_list}

        if old_ids == new_ids:
            # Same membership and order: only leaf payloads/aggregates may
            # differ.  A rule id pins its determinant constraints, so the
            # rectangle is unchanged — unless it is not, in which case the
            # in-place update would diverge from a rebuild: bail out.
            updates: List[Tuple[Rect, CDDRule]] = []
            for old_rule, new_rule in zip(old_list, new_list):
                if old_rule == new_rule:
                    continue
                old_rect = self._rule_rect(old_rule, key)
                new_rect = self._rule_rect(new_rule, key)
                if old_rect != new_rect:
                    return False
                updates.append((new_rect, new_rule))
            for rect, new_rule in updates:
                if not tree.update(rect, new_rule,
                                   match=lambda candidate, rid=new_rule.rule_id:
                                   candidate.rule_id == rid):
                    return False
                stats.entries_updated += 1
            stats.groups_patched += 1
            return True

        # Membership changed.  A single-leaf tree stores entries in list
        # order, so removals keep survivor order and insertions append: the
        # result matches a fresh single-leaf build exactly when the new
        # order is "survivors in old order, then additions at the tail".
        added = [rid for rid in new_ids if rid not in old_by_id]
        dropped = [rid for rid in old_ids if rid not in new_by_id]
        survivors_old = [rid for rid in old_ids if rid in new_by_id]
        if (tree.height() != 1 or len(new_list) > self._max_entries
                or new_ids != survivors_old + added):
            return False
        for old_rule, old_id in zip(old_list, old_ids):
            if old_id in new_by_id and old_rule != new_by_id[old_id]:
                old_rect = self._rule_rect(old_rule, key)
                new_rect = self._rule_rect(new_by_id[old_id], key)
                if old_rect != new_rect:
                    return False
        for rid in dropped:
            if not tree.remove(self._rule_rect(old_by_id[rid], key),
                               match=lambda candidate, rid=rid:
                               candidate.rule_id == rid):
                return False
            stats.entries_removed += 1
        for old_rule, old_id in zip(old_list, old_ids):
            new_rule = new_by_id.get(old_id)
            if new_rule is not None and old_rule != new_rule:
                if not tree.update(self._rule_rect(new_rule, key), new_rule,
                                   match=lambda candidate, rid=old_id:
                                   candidate.rule_id == rid):
                    return False
                stats.entries_updated += 1
        for rid in added:
            new_rule = new_by_id[rid]
            tree.insert(self._rule_rect(new_rule, key), new_rule)
            stats.entries_inserted += 1
        stats.groups_patched += 1
        return True

    # -- statistics --------------------------------------------------------------
    @property
    def rule_count(self) -> int:
        return len(self.rules)

    @property
    def group_count(self) -> int:
        return len(self._trees)

    def lattice_levels(self) -> Dict[int, List[LatticeNode]]:
        """Lattice nodes grouped by level (Figure 2 layout)."""
        levels: Dict[int, List[LatticeNode]] = {}
        for node in self.lattice.values():
            levels.setdefault(node.level, []).append(node)
        return levels

    def combined_dependent_interval(self) -> Tuple[float, float]:
        """Coarsest dependent interval over all rules (root of the lattice)."""
        if not self.rules:
            return (0.0, 1.0)
        low = min(rule.dependent_interval[0] for rule in self.rules)
        high = max(rule.dependent_interval[1] for rule in self.rules)
        return low, high

    # -- queries ------------------------------------------------------------------
    def _record_coordinates(self, record: Record,
                            attributes: Tuple[str, ...]) -> List[Optional[float]]:
        """Main-pivot coordinates of the record on the group's attributes."""
        coordinates: List[Optional[float]] = []
        for attribute in attributes:
            value = record[attribute]
            if value is None:
                coordinates.append(None)
            else:
                coordinates.append(
                    text_distance(value, self.pivots.main_pivot(attribute)))
        return coordinates

    def candidate_rules(self, record: Record,
                        tolerance: float = 1e-6) -> List[CDDRule]:
        """Rules whose indexed constraints may apply to ``record``.

        The aR-trees are traversed top-down; a node is pruned when, on some
        dimension, its MBR holds only constant constraints (degenerate
        coordinates) that cannot equal the record's converted coordinate.
        Interval constraints always pass the index test and are verified
        exactly afterwards.  The returned rules are then filtered with the
        exact :meth:`CDDRule.applicable_to` check, so no false positives
        escape; the index only avoids scanning obviously irrelevant rules.
        """
        self.nodes_visited = 0
        candidates: List[CDDRule] = []
        for key, tree in self._trees.items():
            coordinates = self._record_coordinates(record, key)
            if any(coordinate is None for coordinate in coordinates):
                # A determinant attribute is missing in the record: the
                # group's rules cannot be evaluated, skip the whole tree.
                continue

            def node_filter(rect: Rect, aggregate, coords=coordinates) -> bool:
                for dim, coordinate in enumerate(coords):
                    low = rect.mins[dim]
                    high = rect.maxs[dim]
                    if low == high and low >= 0.0:
                        # All entries below use (or bound) a degenerate
                        # constant coordinate on this dimension.
                        if abs(coordinate - low) > tolerance and low != MISSING_COORDINATE:
                            # Cannot prune purely on equality unless the MBR
                            # is degenerate AND the record coordinate differs.
                            return False
                return True

            entries, visited = tree.traverse(node_filter)
            self.nodes_visited += visited
            for entry in entries:
                rule: CDDRule = entry.payload
                if rule.applicable_to(record, self.dependent):
                    candidates.append(rule)
        # Tightest rules first, mirroring the imputer's preference.
        candidates.sort(key=lambda rule: (rule.dependent_width, -rule.support))
        return candidates


def build_cdd_indexes(rules: Iterable[CDDRule], schema: Schema,
                      pivots: PivotTable, max_entries: int = 8) -> Dict[str, CDDIndex]:
    """Build one CDD-index per dependent attribute (``I_j`` for each ``A_j``)."""
    grouped = group_rules_by_dependent(rules)
    return {
        dependent: CDDIndex(dependent=dependent, rules=dependent_rules,
                            schema=schema, pivots=pivots, max_entries=max_entries)
        for dependent, dependent_rules in grouped.items()
    }
