"""Aggregate R-tree (aR-tree) substrate [Lazaridis & Mehrotra, SIGMOD 2001].

Both imputation indexes of the paper (the per-attribute CDD-index and the
DR-index over the repository) are built on aR-trees: ordinary R-trees whose
nodes additionally carry *aggregates* summarising the entries below them
(keyword bit-vectors, distance intervals, token-size intervals, ...).

This module provides a small, dependency-free aR-tree over axis-aligned
rectangles in ``[0, 1]^d`` with:

* insertion (least-enlargement subtree choice, mid-point splits);
* deletion (exact leaf location, aggregate/MBR repair along the path, node
  underflow handled by condense-and-reinsert) and in-place entry update,
  which is what incremental CDD-index maintenance patches with;
* a ``bulk_load`` fast path that packs a sorted-tile tree bottom-up for
  cold builds instead of paying per-entry insertion splits;
* user-defined aggregates through an :class:`Aggregator` (a pair of
  ``from_payload`` / ``merge`` callables);
* range search and a generic guided traversal with per-node pruning, which
  is what the index join of Section 5.3 needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class Rect:
    """An axis-aligned rectangle (a point is a degenerate rectangle)."""

    mins: Tuple[float, ...]
    maxs: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.mins) != len(self.maxs):
            raise ValueError("mins and maxs must have the same dimensionality")
        for low, high in zip(self.mins, self.maxs):
            if low > high + 1e-12:
                raise ValueError(f"invalid rectangle bounds {low} > {high}")

    @property
    def dimensions(self) -> int:
        return len(self.mins)

    @classmethod
    def from_point(cls, point: Sequence[float]) -> "Rect":
        coords = tuple(float(value) for value in point)
        return cls(mins=coords, maxs=coords)

    @classmethod
    def from_intervals(cls, intervals: Sequence[Tuple[float, float]]) -> "Rect":
        return cls(mins=tuple(float(low) for low, _ in intervals),
                   maxs=tuple(float(high) for _, high in intervals))

    def union(self, other: "Rect") -> "Rect":
        """Smallest rectangle enclosing both rectangles."""
        return Rect(
            mins=tuple(min(a, b) for a, b in zip(self.mins, other.mins)),
            maxs=tuple(max(a, b) for a, b in zip(self.maxs, other.maxs)),
        )

    def intersects(self, other: "Rect") -> bool:
        """True when the rectangles overlap (boundaries included)."""
        return all(low <= other_high + 1e-12 and other_low <= high + 1e-12
                   for low, high, other_low, other_high
                   in zip(self.mins, self.maxs, other.mins, other.maxs))

    def contains_point(self, point: Sequence[float]) -> bool:
        """True when the point lies inside the rectangle (inclusive)."""
        return all(low - 1e-12 <= value <= high + 1e-12
                   for low, high, value in zip(self.mins, self.maxs, point))

    def margin(self) -> float:
        """Sum of side lengths (used as a tie-breaker during splits)."""
        return sum(high - low for low, high in zip(self.mins, self.maxs))

    def area(self) -> float:
        """Product of side lengths (enlargement metric)."""
        area = 1.0
        for low, high in zip(self.mins, self.maxs):
            area *= max(0.0, high - low)
        return area

    def enlargement(self, other: "Rect") -> float:
        """Area increase needed to absorb ``other``."""
        return self.union(other).area() - self.area()

    def min_distance_to(self, other: "Rect") -> float:
        """Sum over dimensions of the minimum per-dimension gap.

        This is the L1 lower bound used when pruning grid cells / tree nodes
        with the pivot-based similarity bound (Lemma 4.2 aggregated over
        attributes).
        """
        total = 0.0
        for low, high, other_low, other_high in zip(self.mins, self.maxs,
                                                    other.mins, other.maxs):
            if low > other_high:
                total += low - other_high
            elif other_low > high:
                total += other_low - high
        return total

    def center(self) -> Tuple[float, ...]:
        return tuple((low + high) / 2.0 for low, high in zip(self.mins, self.maxs))


@dataclass
class Aggregator:
    """User-defined aggregate semantics for an aR-tree.

    ``from_payload(rect, payload)`` builds the aggregate of a single leaf
    entry; ``merge(left, right)`` combines two aggregates.  ``None``
    aggregates are tolerated (they merge to the other side).
    """

    from_payload: Callable[[Rect, Any], Any]
    merge: Callable[[Any, Any], Any]

    def combine(self, aggregates: Iterable[Any]) -> Any:
        result = None
        for aggregate in aggregates:
            if aggregate is None:
                continue
            result = aggregate if result is None else self.merge(result, aggregate)
        return result


def _null_aggregator() -> Aggregator:
    return Aggregator(from_payload=lambda rect, payload: None,
                      merge=lambda left, right: None)


@dataclass
class ARTreeEntry:
    """A leaf entry: rectangle, payload object and its aggregate."""

    rect: Rect
    payload: Any
    aggregate: Any = None


@dataclass
class _Node:
    """Internal tree node (leaf or branch)."""

    is_leaf: bool
    rect: Optional[Rect] = None
    aggregate: Any = None
    entries: List[ARTreeEntry] = field(default_factory=list)
    children: List["_Node"] = field(default_factory=list)

    def recompute(self, aggregator: Aggregator) -> None:
        """Refresh the node MBR and aggregate from its members."""
        members: List[Tuple[Rect, Any]]
        if self.is_leaf:
            members = [(entry.rect, entry.aggregate) for entry in self.entries]
        else:
            members = [(child.rect, child.aggregate) for child in self.children
                       if child.rect is not None]
        if not members:
            self.rect = None
            self.aggregate = None
            return
        rect = members[0][0]
        for other, _ in members[1:]:
            rect = rect.union(other)
        self.rect = rect
        self.aggregate = aggregator.combine(aggregate for _, aggregate in members)


class ARTree:
    """A minimal aggregate R-tree.

    Parameters
    ----------
    dimensions:
        Dimensionality of the indexed rectangles.
    max_entries:
        Node fan-out before a split.
    aggregator:
        Aggregate semantics; defaults to "no aggregates".
    min_entries:
        Fill floor below which a non-root node is dissolved during a
        deletion (condense-and-reinsert); defaults to ``max_entries // 3``
        with a floor of 1.  Insertion never enforces it.
    """

    def __init__(self, dimensions: int, max_entries: int = 8,
                 aggregator: Optional[Aggregator] = None,
                 min_entries: Optional[int] = None) -> None:
        if dimensions < 1:
            raise ValueError("dimensions must be >= 1")
        if max_entries < 2:
            raise ValueError("max_entries must be >= 2")
        if min_entries is None:
            min_entries = max(1, max_entries // 3)
        if not 1 <= min_entries <= max_entries // 2:
            raise ValueError("min_entries must be in [1, max_entries // 2]")
        self.dimensions = dimensions
        self.max_entries = max_entries
        self.min_entries = min_entries
        self.aggregator = aggregator or _null_aggregator()
        self._root = _Node(is_leaf=True)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    @property
    def root_rect(self) -> Optional[Rect]:
        return self._root.rect

    @property
    def root_aggregate(self) -> Any:
        return self._root.aggregate

    # -- insertion -----------------------------------------------------------
    def insert(self, rect: Rect, payload: Any) -> None:
        """Insert one rectangle with its payload."""
        if rect.dimensions != self.dimensions:
            raise ValueError(
                f"rect has {rect.dimensions} dims, tree expects {self.dimensions}")
        aggregate = self.aggregator.from_payload(rect, payload)
        entry = ARTreeEntry(rect=rect, payload=payload, aggregate=aggregate)
        self._insert_entry(self._root, entry, path=[])
        self._size += 1

    def insert_point(self, point: Sequence[float], payload: Any) -> None:
        """Insert a point payload (degenerate rectangle)."""
        self.insert(Rect.from_point(point), payload)

    def _choose_child(self, node: _Node, rect: Rect) -> _Node:
        best = None
        best_key = None
        for child in node.children:
            child_rect = child.rect if child.rect is not None else rect
            key = (child_rect.enlargement(rect), child_rect.area())
            if best_key is None or key < best_key:
                best_key = key
                best = child
        assert best is not None
        return best

    def _insert_entry(self, node: _Node, entry: ARTreeEntry,
                      path: List[_Node]) -> None:
        path.append(node)
        if node.is_leaf:
            node.entries.append(entry)
        else:
            child = self._choose_child(node, entry.rect)
            self._insert_entry(child, entry, path)
        if node.is_leaf and len(node.entries) > self.max_entries:
            self._split_leaf(node, path)
        elif not node.is_leaf and len(node.children) > self.max_entries:
            self._split_branch(node, path)
        node.recompute(self.aggregator)

    def _widest_dimension(self, rects: Sequence[Rect]) -> int:
        spans = []
        for dim in range(self.dimensions):
            lows = [rect.mins[dim] for rect in rects]
            highs = [rect.maxs[dim] for rect in rects]
            spans.append(max(highs) - min(lows))
        return max(range(self.dimensions), key=lambda dim: spans[dim])

    def _split_leaf(self, node: _Node, path: List[_Node]) -> None:
        dim = self._widest_dimension([entry.rect for entry in node.entries])
        node.entries.sort(key=lambda entry: entry.rect.center()[dim])
        half = len(node.entries) // 2
        sibling = _Node(is_leaf=True, entries=node.entries[half:])
        node.entries = node.entries[:half]
        sibling.recompute(self.aggregator)
        node.recompute(self.aggregator)
        self._attach_sibling(node, sibling, path)

    def _split_branch(self, node: _Node, path: List[_Node]) -> None:
        dim = self._widest_dimension([child.rect for child in node.children
                                      if child.rect is not None])
        node.children.sort(key=lambda child: child.rect.center()[dim]
                           if child.rect is not None else 0.0)
        half = len(node.children) // 2
        sibling = _Node(is_leaf=False, children=node.children[half:])
        node.children = node.children[:half]
        sibling.recompute(self.aggregator)
        node.recompute(self.aggregator)
        self._attach_sibling(node, sibling, path)

    def _attach_sibling(self, node: _Node, sibling: _Node,
                        path: List[_Node]) -> None:
        if node is self._root:
            new_root = _Node(is_leaf=False, children=[node, sibling])
            new_root.recompute(self.aggregator)
            self._root = new_root
            return
        # Identity scan: _Node is a dataclass, so list.index would compare
        # whole subtrees by value.
        position = next(index for index, candidate in enumerate(path)
                        if candidate is node)
        parent = path[position - 1]
        parent.children.append(sibling)

    # -- deletion / update -------------------------------------------------------
    def remove(self, rect: Rect, payload: Any = None, *,
               match: Optional[Callable[[Any], bool]] = None) -> bool:
        """Remove one leaf entry with exactly this rectangle.

        ``payload`` (compared by identity, then equality) or ``match`` (a
        predicate over the stored payload) selects among entries sharing the
        rectangle; with neither, any entry with the rectangle qualifies.
        MBRs and aggregates are repaired along the path to the root; a node
        falling below ``min_entries`` is dissolved and its remaining entries
        re-inserted (condense-and-reinsert).  Returns ``False`` when no
        entry matched.
        """
        found = self._find_leaf(self._root, rect,
                                self._payload_matcher(payload, match), [])
        if found is None:
            return False
        leaf, index, path = found
        del leaf.entries[index]
        self._size -= 1
        self._condense(path)
        return True

    def update(self, rect: Rect, new_payload: Any, *,
               match: Optional[Callable[[Any], bool]] = None,
               new_rect: Optional[Rect] = None) -> bool:
        """Replace a matching entry's payload, re-deriving its aggregate.

        While the rectangle is unchanged (``new_rect`` omitted or equal)
        the entry is refreshed strictly in place — leaf entry order and the
        whole tree structure are preserved, only aggregates along the path
        are recomputed.  A changed rectangle degrades to remove + insert.
        ``match`` defaults to equality with ``new_payload``.  Returns
        ``False`` when no entry matched.
        """
        matcher = self._payload_matcher(new_payload, match)
        if new_rect is not None and new_rect != rect:
            if not self.remove(rect, match=matcher):
                return False
            self.insert(new_rect, new_payload)
            return True
        found = self._find_leaf(self._root, rect, matcher, [])
        if found is None:
            return False
        leaf, index, path = found
        entry = leaf.entries[index]
        entry.payload = new_payload
        entry.aggregate = self.aggregator.from_payload(entry.rect, new_payload)
        for node in reversed(path):
            node.recompute(self.aggregator)
        return True

    @staticmethod
    def _payload_matcher(payload: Any,
                         match: Optional[Callable[[Any], bool]]
                         ) -> Callable[[Any], bool]:
        if match is not None:
            return match
        if payload is None:
            return lambda candidate: True
        return lambda candidate: candidate is payload or candidate == payload

    def _find_leaf(self, node: _Node, rect: Rect,
                   matcher: Callable[[Any], bool],
                   path: List[_Node]) -> Optional[Tuple[_Node, int, List[_Node]]]:
        """Locate (leaf, entry index, root..leaf path) of a matching entry."""
        if node.rect is not None and not node.rect.intersects(rect):
            return None
        path.append(node)
        if node.is_leaf:
            for index, entry in enumerate(node.entries):
                if entry.rect == rect and matcher(entry.payload):
                    return node, index, path
        else:
            for child in node.children:
                found = self._find_leaf(child, rect, matcher, path)
                if found is not None:
                    return found
        path.pop()
        return None

    def _condense(self, path: List[_Node]) -> None:
        """Guttman CondenseTree: repair the deletion path bottom-up.

        Underfull non-root nodes are cut out of their parent and their leaf
        entries re-inserted at the end (re-insertion keeps all leaves at a
        uniform depth, so no at-level subtree grafting is needed).
        """
        orphaned: List[ARTreeEntry] = []
        for depth in range(len(path) - 1, -1, -1):
            node = path[depth]
            if node is not self._root:
                members = len(node.entries) if node.is_leaf else len(node.children)
                if members < self.min_entries:
                    parent = path[depth - 1]
                    parent.children[:] = [child for child in parent.children
                                          if child is not node]
                    orphaned.extend(self._subtree_entries(node))
                    continue
            node.recompute(self.aggregator)
        root = self._root
        while not root.is_leaf and len(root.children) == 1:
            root = root.children[0]
        if not root.is_leaf and not root.children:
            root = _Node(is_leaf=True)
        self._root = root
        for entry in orphaned:  # already counted in _size
            self._insert_entry(self._root, entry, path=[])

    def _subtree_entries(self, node: _Node) -> List[ARTreeEntry]:
        entries: List[ARTreeEntry] = []
        stack = [node]
        while stack:
            current = stack.pop()
            if current.is_leaf:
                entries.extend(current.entries)
            else:
                stack.extend(current.children)
        return entries

    # -- bulk loading ------------------------------------------------------------
    def bulk_load(self, items: Iterable[Tuple[Rect, Any]]) -> None:
        """Pack the tree bottom-up from scratch (sort-tile recursive).

        Much faster than repeated :meth:`insert` for cold builds: entries
        are sorted once per level along the widest dimension and chunked
        into full nodes, so no splits or re-sorts happen.  With at most
        ``max_entries`` items the resulting single leaf preserves the input
        order exactly, matching what sequential insertion would build.  The
        tree must be empty.
        """
        if self._size:
            raise ValueError("bulk_load requires an empty tree")
        entries: List[ARTreeEntry] = []
        for rect, payload in items:
            if rect.dimensions != self.dimensions:
                raise ValueError(
                    f"rect has {rect.dimensions} dims, tree expects {self.dimensions}")
            entries.append(ARTreeEntry(
                rect=rect, payload=payload,
                aggregate=self.aggregator.from_payload(rect, payload)))
        if not entries:
            return
        self._size = len(entries)
        if len(entries) <= self.max_entries:
            self._root = _Node(is_leaf=True, entries=entries)
            self._root.recompute(self.aggregator)
            return
        nodes = self._pack_level(
            [(entry.rect, entry) for entry in entries], is_leaf=True)
        while len(nodes) > 1:
            if len(nodes) <= self.max_entries:
                root = _Node(is_leaf=False, children=nodes)
                root.recompute(self.aggregator)
                nodes = [root]
            else:
                nodes = self._pack_level(
                    [(node.rect, node) for node in nodes], is_leaf=False)
        self._root = nodes[0]

    def _pack_level(self, members: List[Tuple[Rect, Any]],
                    is_leaf: bool) -> List[_Node]:
        """Chunk members into nodes of ``max_entries`` along the widest dim."""
        dim = self._widest_dimension([rect for rect, _ in members])
        ordered = sorted(members, key=lambda member: member[0].center()[dim])
        nodes: List[_Node] = []
        for start in range(0, len(ordered), self.max_entries):
            chunk = [member for _, member in ordered[start:start + self.max_entries]]
            if is_leaf:
                node = _Node(is_leaf=True, entries=chunk)
            else:
                node = _Node(is_leaf=False, children=chunk)
            node.recompute(self.aggregator)
            nodes.append(node)
        return nodes

    # -- queries -----------------------------------------------------------------
    def range_search(self, rect: Rect) -> List[ARTreeEntry]:
        """All leaf entries whose rectangle intersects ``rect``."""
        results: List[ARTreeEntry] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.rect is not None and not node.rect.intersects(rect):
                continue
            if node.is_leaf:
                results.extend(entry for entry in node.entries
                               if entry.rect.intersects(rect))
            else:
                stack.extend(node.children)
        return results

    def traverse(
        self,
        node_filter: Callable[[Rect, Any], bool],
        entry_filter: Optional[Callable[[ARTreeEntry], bool]] = None,
    ) -> Tuple[List[ARTreeEntry], int]:
        """Guided traversal with aggregate-based pruning.

        ``node_filter(rect, aggregate)`` decides whether a node may contain
        qualifying entries; nodes that fail the filter are pruned together
        with their whole subtree.  Returns the qualifying entries and the
        number of visited nodes (used by the complexity experiments).
        """
        results: List[ARTreeEntry] = []
        visited = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            visited += 1
            if node.rect is not None and not node_filter(node.rect, node.aggregate):
                continue
            if node.is_leaf:
                for entry in node.entries:
                    if entry_filter is None or entry_filter(entry):
                        results.append(entry)
            else:
                stack.extend(node.children)
        return results, visited

    def all_entries(self) -> Iterator[ARTreeEntry]:
        """Iterate over every leaf entry (unordered)."""
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                yield from node.entries
            else:
                stack.extend(node.children)

    def height(self) -> int:
        """Tree height (1 for a single leaf root)."""
        height = 1
        node = self._root
        while not node.is_leaf:
            height += 1
            node = node.children[0]
        return height
