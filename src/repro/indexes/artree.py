"""Aggregate R-tree (aR-tree) substrate [Lazaridis & Mehrotra, SIGMOD 2001].

Both imputation indexes of the paper (the per-attribute CDD-index and the
DR-index over the repository) are built on aR-trees: ordinary R-trees whose
nodes additionally carry *aggregates* summarising the entries below them
(keyword bit-vectors, distance intervals, token-size intervals, ...).

This module provides a small, dependency-free aR-tree over axis-aligned
rectangles in ``[0, 1]^d`` with:

* insertion (least-enlargement subtree choice, mid-point splits);
* user-defined aggregates through an :class:`Aggregator` (a pair of
  ``from_payload`` / ``merge`` callables);
* range search and a generic guided traversal with per-node pruning, which
  is what the index join of Section 5.3 needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class Rect:
    """An axis-aligned rectangle (a point is a degenerate rectangle)."""

    mins: Tuple[float, ...]
    maxs: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.mins) != len(self.maxs):
            raise ValueError("mins and maxs must have the same dimensionality")
        for low, high in zip(self.mins, self.maxs):
            if low > high + 1e-12:
                raise ValueError(f"invalid rectangle bounds {low} > {high}")

    @property
    def dimensions(self) -> int:
        return len(self.mins)

    @classmethod
    def from_point(cls, point: Sequence[float]) -> "Rect":
        coords = tuple(float(value) for value in point)
        return cls(mins=coords, maxs=coords)

    @classmethod
    def from_intervals(cls, intervals: Sequence[Tuple[float, float]]) -> "Rect":
        return cls(mins=tuple(float(low) for low, _ in intervals),
                   maxs=tuple(float(high) for _, high in intervals))

    def union(self, other: "Rect") -> "Rect":
        """Smallest rectangle enclosing both rectangles."""
        return Rect(
            mins=tuple(min(a, b) for a, b in zip(self.mins, other.mins)),
            maxs=tuple(max(a, b) for a, b in zip(self.maxs, other.maxs)),
        )

    def intersects(self, other: "Rect") -> bool:
        """True when the rectangles overlap (boundaries included)."""
        return all(low <= other_high + 1e-12 and other_low <= high + 1e-12
                   for low, high, other_low, other_high
                   in zip(self.mins, self.maxs, other.mins, other.maxs))

    def contains_point(self, point: Sequence[float]) -> bool:
        """True when the point lies inside the rectangle (inclusive)."""
        return all(low - 1e-12 <= value <= high + 1e-12
                   for low, high, value in zip(self.mins, self.maxs, point))

    def margin(self) -> float:
        """Sum of side lengths (used as a tie-breaker during splits)."""
        return sum(high - low for low, high in zip(self.mins, self.maxs))

    def area(self) -> float:
        """Product of side lengths (enlargement metric)."""
        area = 1.0
        for low, high in zip(self.mins, self.maxs):
            area *= max(0.0, high - low)
        return area

    def enlargement(self, other: "Rect") -> float:
        """Area increase needed to absorb ``other``."""
        return self.union(other).area() - self.area()

    def min_distance_to(self, other: "Rect") -> float:
        """Sum over dimensions of the minimum per-dimension gap.

        This is the L1 lower bound used when pruning grid cells / tree nodes
        with the pivot-based similarity bound (Lemma 4.2 aggregated over
        attributes).
        """
        total = 0.0
        for low, high, other_low, other_high in zip(self.mins, self.maxs,
                                                    other.mins, other.maxs):
            if low > other_high:
                total += low - other_high
            elif other_low > high:
                total += other_low - high
        return total

    def center(self) -> Tuple[float, ...]:
        return tuple((low + high) / 2.0 for low, high in zip(self.mins, self.maxs))


@dataclass
class Aggregator:
    """User-defined aggregate semantics for an aR-tree.

    ``from_payload(rect, payload)`` builds the aggregate of a single leaf
    entry; ``merge(left, right)`` combines two aggregates.  ``None``
    aggregates are tolerated (they merge to the other side).
    """

    from_payload: Callable[[Rect, Any], Any]
    merge: Callable[[Any, Any], Any]

    def combine(self, aggregates: Iterable[Any]) -> Any:
        result = None
        for aggregate in aggregates:
            if aggregate is None:
                continue
            result = aggregate if result is None else self.merge(result, aggregate)
        return result


def _null_aggregator() -> Aggregator:
    return Aggregator(from_payload=lambda rect, payload: None,
                      merge=lambda left, right: None)


@dataclass
class ARTreeEntry:
    """A leaf entry: rectangle, payload object and its aggregate."""

    rect: Rect
    payload: Any
    aggregate: Any = None


@dataclass
class _Node:
    """Internal tree node (leaf or branch)."""

    is_leaf: bool
    rect: Optional[Rect] = None
    aggregate: Any = None
    entries: List[ARTreeEntry] = field(default_factory=list)
    children: List["_Node"] = field(default_factory=list)

    def recompute(self, aggregator: Aggregator) -> None:
        """Refresh the node MBR and aggregate from its members."""
        members: List[Tuple[Rect, Any]]
        if self.is_leaf:
            members = [(entry.rect, entry.aggregate) for entry in self.entries]
        else:
            members = [(child.rect, child.aggregate) for child in self.children
                       if child.rect is not None]
        if not members:
            self.rect = None
            self.aggregate = None
            return
        rect = members[0][0]
        for other, _ in members[1:]:
            rect = rect.union(other)
        self.rect = rect
        self.aggregate = aggregator.combine(aggregate for _, aggregate in members)


class ARTree:
    """A minimal aggregate R-tree.

    Parameters
    ----------
    dimensions:
        Dimensionality of the indexed rectangles.
    max_entries:
        Node fan-out before a split.
    aggregator:
        Aggregate semantics; defaults to "no aggregates".
    """

    def __init__(self, dimensions: int, max_entries: int = 8,
                 aggregator: Optional[Aggregator] = None) -> None:
        if dimensions < 1:
            raise ValueError("dimensions must be >= 1")
        if max_entries < 2:
            raise ValueError("max_entries must be >= 2")
        self.dimensions = dimensions
        self.max_entries = max_entries
        self.aggregator = aggregator or _null_aggregator()
        self._root = _Node(is_leaf=True)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    @property
    def root_rect(self) -> Optional[Rect]:
        return self._root.rect

    @property
    def root_aggregate(self) -> Any:
        return self._root.aggregate

    # -- insertion -----------------------------------------------------------
    def insert(self, rect: Rect, payload: Any) -> None:
        """Insert one rectangle with its payload."""
        if rect.dimensions != self.dimensions:
            raise ValueError(
                f"rect has {rect.dimensions} dims, tree expects {self.dimensions}")
        aggregate = self.aggregator.from_payload(rect, payload)
        entry = ARTreeEntry(rect=rect, payload=payload, aggregate=aggregate)
        self._insert_entry(self._root, entry, path=[])
        self._size += 1

    def insert_point(self, point: Sequence[float], payload: Any) -> None:
        """Insert a point payload (degenerate rectangle)."""
        self.insert(Rect.from_point(point), payload)

    def _choose_child(self, node: _Node, rect: Rect) -> _Node:
        best = None
        best_key = None
        for child in node.children:
            child_rect = child.rect if child.rect is not None else rect
            key = (child_rect.enlargement(rect), child_rect.area())
            if best_key is None or key < best_key:
                best_key = key
                best = child
        assert best is not None
        return best

    def _insert_entry(self, node: _Node, entry: ARTreeEntry,
                      path: List[_Node]) -> None:
        path.append(node)
        if node.is_leaf:
            node.entries.append(entry)
        else:
            child = self._choose_child(node, entry.rect)
            self._insert_entry(child, entry, path)
        if node.is_leaf and len(node.entries) > self.max_entries:
            self._split_leaf(node, path)
        elif not node.is_leaf and len(node.children) > self.max_entries:
            self._split_branch(node, path)
        node.recompute(self.aggregator)

    def _widest_dimension(self, rects: Sequence[Rect]) -> int:
        spans = []
        for dim in range(self.dimensions):
            lows = [rect.mins[dim] for rect in rects]
            highs = [rect.maxs[dim] for rect in rects]
            spans.append(max(highs) - min(lows))
        return max(range(self.dimensions), key=lambda dim: spans[dim])

    def _split_leaf(self, node: _Node, path: List[_Node]) -> None:
        dim = self._widest_dimension([entry.rect for entry in node.entries])
        node.entries.sort(key=lambda entry: entry.rect.center()[dim])
        half = len(node.entries) // 2
        sibling = _Node(is_leaf=True, entries=node.entries[half:])
        node.entries = node.entries[:half]
        sibling.recompute(self.aggregator)
        node.recompute(self.aggregator)
        self._attach_sibling(node, sibling, path)

    def _split_branch(self, node: _Node, path: List[_Node]) -> None:
        dim = self._widest_dimension([child.rect for child in node.children
                                      if child.rect is not None])
        node.children.sort(key=lambda child: child.rect.center()[dim]
                           if child.rect is not None else 0.0)
        half = len(node.children) // 2
        sibling = _Node(is_leaf=False, children=node.children[half:])
        node.children = node.children[:half]
        sibling.recompute(self.aggregator)
        node.recompute(self.aggregator)
        self._attach_sibling(node, sibling, path)

    def _attach_sibling(self, node: _Node, sibling: _Node,
                        path: List[_Node]) -> None:
        if node is self._root:
            new_root = _Node(is_leaf=False, children=[node, sibling])
            new_root.recompute(self.aggregator)
            self._root = new_root
            return
        parent = path[path.index(node) - 1]
        parent.children.append(sibling)

    # -- queries -----------------------------------------------------------------
    def range_search(self, rect: Rect) -> List[ARTreeEntry]:
        """All leaf entries whose rectangle intersects ``rect``."""
        results: List[ARTreeEntry] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.rect is not None and not node.rect.intersects(rect):
                continue
            if node.is_leaf:
                results.extend(entry for entry in node.entries
                               if entry.rect.intersects(rect))
            else:
                stack.extend(node.children)
        return results

    def traverse(
        self,
        node_filter: Callable[[Rect, Any], bool],
        entry_filter: Optional[Callable[[ARTreeEntry], bool]] = None,
    ) -> Tuple[List[ARTreeEntry], int]:
        """Guided traversal with aggregate-based pruning.

        ``node_filter(rect, aggregate)`` decides whether a node may contain
        qualifying entries; nodes that fail the filter are pruned together
        with their whole subtree.  Returns the qualifying entries and the
        number of visited nodes (used by the complexity experiments).
        """
        results: List[ARTreeEntry] = []
        visited = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            visited += 1
            if node.rect is not None and not node_filter(node.rect, node.aggregate):
                continue
            if node.is_leaf:
                for entry in node.entries:
                    if entry_filter is None or entry_filter(entry):
                        results.append(entry)
            else:
                stack.extend(node.children)
        return results, visited

    def all_entries(self) -> Iterator[ARTreeEntry]:
        """Iterate over every leaf entry (unordered)."""
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                yield from node.entries
            else:
                stack.extend(node.children)

    def height(self) -> int:
        """Tree height (1 for a single leaf root)."""
        height = 1
        node = self._root
        while not node.is_leaf:
            height += 1
            node = node.children[0]
        return height
