"""Index and synopsis structures: aR-tree, pivots, CDD-index, DR-index, ER-grid."""

from repro.indexes.artree import Aggregator, ARTree, ARTreeEntry, Rect
from repro.indexes.cdd_index import CDDIndex, CDDPatchStats, build_cdd_indexes
from repro.indexes.dr_index import DRIndex
from repro.indexes.er_grid import ERGrid, GridCell
from repro.indexes.pivots import (
    PivotSelectionConfig,
    PivotSelectionReport,
    PivotTable,
    pivot_selection_cost,
    select_pivots,
    shannon_entropy,
)

__all__ = [
    "Aggregator",
    "ARTree",
    "ARTreeEntry",
    "CDDIndex",
    "CDDPatchStats",
    "DRIndex",
    "ERGrid",
    "GridCell",
    "PivotSelectionConfig",
    "PivotSelectionReport",
    "PivotTable",
    "Rect",
    "build_cdd_indexes",
    "pivot_selection_cost",
    "select_pivots",
    "shannon_entropy",
]
