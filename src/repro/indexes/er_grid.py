"""The ER-grid data synopsis ``G_ER`` over the sliding windows (Section 5.2).

The grid partitions the pivot-converted space ``[0, 1]^d`` into equal-size
cells.  Every in-window imputed tuple is registered in all cells its
coordinate rectangle (the per-attribute main-pivot distance intervals of its
possible values) intersects.  Cells maintain aggregates — a keyword flag,
per-attribute distance intervals and token-size intervals — which allow the
engine to discard whole cells with the topic and similarity bounds before
looking at individual tuples.

The grid is maintained incrementally: expired tuples are evicted and their
cells' aggregates recomputed; new tuples are inserted together with their
pre-computed :class:`~repro.core.pruning.RecordSynopsis`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.pruning import (
    HAS_NUMPY,
    PackedStore,
    RecordSynopsis,
    batch_cell_scan,
    min_attribute_distance,
)
from repro.core.tuples import ImputedRecord, Schema

if HAS_NUMPY:
    import numpy as _np
else:  # pragma: no cover - exercised only on numpy-less installs
    _np = None


@dataclass
class GridCell:
    """One cell of the ER-grid with its aggregates."""

    coordinates: Tuple[int, ...]
    entries: Dict[Tuple[str, str], RecordSynopsis] = field(default_factory=dict)
    may_have_keyword: bool = False
    distance_intervals: Optional[List[Tuple[float, float]]] = None
    token_size_intervals: Optional[List[Tuple[int, int]]] = None

    def __len__(self) -> int:
        return len(self.entries)

    def recompute(self, schema: Schema) -> None:
        """Refresh the cell aggregates from its current entries."""
        if not self.entries:
            self.may_have_keyword = False
            self.distance_intervals = None
            self.token_size_intervals = None
            return
        self.may_have_keyword = any(entry.may_have_keyword
                                    for entry in self.entries.values())
        distance: List[Tuple[float, float]] = []
        sizes: List[Tuple[int, int]] = []
        for attribute in schema:
            lows = []
            highs = []
            size_lows = []
            size_highs = []
            for entry in self.entries.values():
                low, high = entry.main_interval(attribute)
                lows.append(low)
                highs.append(high)
                size_low, size_high = entry.token_size_bounds[attribute]
                size_lows.append(size_low)
                size_highs.append(size_high)
            distance.append((min(lows), max(highs)))
            sizes.append((min(size_lows), max(size_highs)))
        self.distance_intervals = distance
        self.token_size_intervals = sizes

    def add(self, synopsis: RecordSynopsis, schema: Schema) -> None:
        """Register one tuple synopsis and update the aggregates incrementally."""
        key = (synopsis.record.rid, synopsis.record.source)
        self.entries[key] = synopsis
        self.may_have_keyword = self.may_have_keyword or synopsis.may_have_keyword
        new_distance: List[Tuple[float, float]] = []
        new_sizes: List[Tuple[int, int]] = []
        for index, attribute in enumerate(schema):
            low, high = synopsis.main_interval(attribute)
            size_low, size_high = synopsis.token_size_bounds[attribute]
            if self.distance_intervals is None:
                new_distance.append((low, high))
                new_sizes.append((size_low, size_high))
            else:
                old_low, old_high = self.distance_intervals[index]
                new_distance.append((min(old_low, low), max(old_high, high)))
                old_size_low, old_size_high = self.token_size_intervals[index]  # type: ignore[index]
                new_sizes.append((min(old_size_low, size_low),
                                  max(old_size_high, size_high)))
        self.distance_intervals = new_distance
        self.token_size_intervals = new_sizes

    def remove(self, rid: str, source: str, schema: Schema) -> bool:
        """Evict one tuple; aggregates are recomputed from scratch."""
        removed = self.entries.pop((rid, source), None)
        if removed is None:
            return False
        self.recompute(schema)
        return True


class CellStore:
    """A resident, columnar mirror of the per-cell aggregates.

    The cell-level pruning of ``candidate_synopses`` reads exactly two
    aggregates per cell — the keyword flag and the per-attribute distance
    intervals — so they are packed into dense arrays (``lb`` / ``ub`` of
    shape ``(capacity, d)``, a boolean ``may_kw``) keyed by cell coordinates.
    The grid maintains the store incrementally beside its
    :class:`~repro.core.pruning.PackedStore`: every ``GridCell`` aggregate
    refresh rewrites one row, evicted cells recycle their rows through a
    free list, and the whole-grid scan becomes one
    :func:`~repro.core.pruning.batch_cell_scan` kernel call instead of a
    per-cell Python walk.
    """

    def __init__(self, dimensionality: int, arena=None) -> None:
        self.dimensionality = dimensionality
        self._rows: Dict[Tuple[int, ...], int] = {}
        self._free: List[int] = []
        self._arena = arena
        self.lb = None
        self.ub = None
        self.may_kw = None

    def __len__(self) -> int:
        return len(self._rows)

    @property
    def arena(self):
        """The shared-memory arena backing the arrays (``None`` in-process)."""
        return self._arena

    def localize(self) -> None:
        """Copy the arrays out of the arena into plain process memory."""
        if self._arena is None:
            return
        for name in ("lb", "ub", "may_kw"):
            array = getattr(self, name)
            if array is not None:
                setattr(self, name, _np.array(array))
        self._arena = None

    def _grow(self, capacity: int) -> None:
        if self._arena is not None:
            arrays = self._arena.rebuild([
                ("lb", (capacity, self.dimensionality), "f8"),
                ("ub", (capacity, self.dimensionality), "f8"),
                ("may_kw", (capacity,), "?"),
            ])
            self.lb = arrays["lb"]
            self.ub = arrays["ub"]
            self.may_kw = arrays["may_kw"]
            return

        def expand(array, shape, dtype=float):
            fresh = _np.zeros(shape, dtype=dtype)
            if array is not None:
                fresh[: array.shape[0]] = array
            return fresh

        self.lb = expand(self.lb, (capacity, self.dimensionality))
        self.ub = expand(self.ub, (capacity, self.dimensionality))
        self.may_kw = expand(self.may_kw, (capacity,), dtype=bool)

    def update(self, cell: GridCell, journal=None) -> None:
        """Write (or refresh) one cell's aggregate row."""
        row = self._rows.get(cell.coordinates)
        if row is None:
            if self._free:
                row = self._free.pop()
            else:
                row = len(self._rows)
                if self.may_kw is None or row >= self.may_kw.shape[0]:
                    self._grow(max(64, 2 * row))
            self._rows[cell.coordinates] = row
        if journal is not None:
            # Pre-image of the row's first write this batch: shm readers
            # need the pre-batch value for rows rewritten later in the
            # batch than the op they are evaluating.
            journal.capture_pre(row, self.lb[row], self.ub[row])
        for index, (low, high) in enumerate(cell.distance_intervals):
            self.lb[row, index] = low
            self.ub[row, index] = high
        self.may_kw[row] = cell.may_have_keyword

    def remove(self, coordinates: Tuple[int, ...]) -> bool:
        row = self._rows.pop(coordinates, None)
        if row is None:
            return False
        self._free.append(row)
        return True

    def row_of(self, coordinates: Tuple[int, ...]) -> Optional[int]:
        return self._rows.get(coordinates)

    def scan(self, rectangle: Sequence[Tuple[float, float]], margin: float,
             require_keyword: bool):
        """Survivor mask (by row) of the two cell-level aggregate tests.

        A row survives when its min converted-space L1 distance to the query
        rectangle is below ``margin`` and — with ``require_keyword`` — its
        cell may contain a keyword-bearing tuple.  Free rows carry stale
        aggregates; callers only consult rows of live cells.
        """
        if self.lb is None:
            # Enabled-but-empty store: no row was ever written (arrays are
            # only allocated by the first insert), so nothing can survive.
            # A lookup may legitimately precede the first insert — e.g. a
            # query-time resolve against a freshly enabled grid — and must
            # see an all-dead mask, not a crash on the ``None`` arrays.
            return _np.zeros(0, dtype=bool)
        query_lb = _np.fromiter((low for low, _ in rectangle), dtype=float,
                                count=len(rectangle))
        query_ub = _np.fromiter((high for _, high in rectangle), dtype=float,
                                count=len(rectangle))
        totals = batch_cell_scan(query_lb, query_ub, self.lb, self.ub)
        alive = totals < margin
        if require_keyword:
            alive &= self.may_kw
        return alive


class ERGrid:
    """The ER-grid synopsis over the in-window imputed tuples of all streams."""

    def __init__(self, schema: Schema, cells_per_dim: int = 5) -> None:
        if cells_per_dim < 1:
            raise ValueError("cells_per_dim must be >= 1")
        self.schema = schema
        self.cells_per_dim = cells_per_dim
        self._cells: Dict[Tuple[int, ...], GridCell] = {}
        self._record_cells: Dict[Tuple[str, str], List[Tuple[int, ...]]] = {}
        self._synopses: Dict[Tuple[str, str], RecordSynopsis] = {}
        self._packed_store: Optional[PackedStore] = None
        self._cell_store: Optional[CellStore] = None
        #: Optional :class:`~repro.runtime.shm_plane.GridJournal` recording
        #: per-batch cell-membership mutations for shared-memory workers.
        self.journal = None
        self._mutations = 0
        self._maintenance_listeners: List = []
        self.cells_examined = 0
        self.tuples_examined = 0

    # -- resident packed store ---------------------------------------------------
    @property
    def packed_store(self) -> Optional[PackedStore]:
        """The resident columnar synopsis store (``None`` until enabled)."""
        return self._packed_store

    def enable_packed_store(self, arena=None) -> Optional[PackedStore]:
        """Keep a columnar :class:`PackedStore` in sync with the grid.

        Enabled on demand by the vectorized refinement path (so the serial
        executor pays nothing); on first call the current window contents
        are back-filled, afterwards :meth:`insert` / :meth:`remove` maintain
        the store incrementally.  With ``arena`` the store's arrays live in
        that shared-memory arena (an existing in-process store is rebuilt
        into it; re-enabling with the same arena is a no-op).  A no-op
        returning ``None`` without numpy.
        """
        if not HAS_NUMPY:
            return None
        if self._packed_store is None or (
                arena is not None and self._packed_store.arena is not arena):
            store = PackedStore(arena=arena)
            for synopsis in self._synopses.values():
                store.insert(synopsis)
            self._packed_store = store
        return self._packed_store

    @property
    def cell_store(self) -> Optional["CellStore"]:
        """The resident columnar cell-aggregate store (``None`` until enabled)."""
        return self._cell_store

    def enable_cell_store(self, arena=None) -> Optional["CellStore"]:
        """Keep a columnar :class:`CellStore` in sync with the cell aggregates.

        Enabled on demand by the vectorized lookup path (the serial executor
        pays nothing); on first call the current cells are back-filled,
        afterwards :meth:`insert` / :meth:`remove` maintain the store
        incrementally and :meth:`candidate_synopses` scans the whole grid
        with one :func:`~repro.core.pruning.batch_cell_scan` call.  With
        ``arena`` the store's arrays live in that shared-memory arena.  A
        no-op returning ``None`` without numpy.
        """
        if not HAS_NUMPY:
            return None
        if self._cell_store is None or (
                arena is not None and self._cell_store.arena is not arena):
            store = CellStore(len(self.schema), arena=arena)
            for cell in self._cells.values():
                store.update(cell)
            self._cell_store = store
        return self._cell_store

    # -- coordinate helpers ------------------------------------------------------
    def _bucket(self, value: float) -> int:
        """Cell index of one coordinate value."""
        clamped = min(max(value, 0.0), 1.0)
        return min(self.cells_per_dim - 1, int(clamped * self.cells_per_dim))

    def _bucket_range(self, low: float, high: float) -> range:
        return range(self._bucket(low), self._bucket(high) + 1)

    def _cells_for_rectangle(
        self, rectangle: Sequence[Tuple[float, float]]
    ) -> Iterable[Tuple[int, ...]]:
        ranges = [self._bucket_range(low, high) for low, high in rectangle]
        return itertools.product(*ranges)

    def cell_bounds(self, coordinates: Tuple[int, ...]) -> List[Tuple[float, float]]:
        """Coordinate-space bounds of one cell."""
        width = 1.0 / self.cells_per_dim
        return [(index * width, (index + 1) * width) for index in coordinates]

    def cells_within_margin(self, rectangle: Sequence[Tuple[float, float]],
                            margin: float, lattice_cap: Optional[int] = None,
                            ) -> Optional[Set[Tuple[int, ...]]]:
        """Every lattice cell whose min L1 distance to ``rectangle`` is
        below ``margin`` — whether or not the cell currently exists.

        This is the *region set* of a query rectangle: by the cell-level
        distance bound (Lemma 4.2), a record can only have an instance pair
        with similarity above ``d − margin`` against a tuple whose rectangle
        intersects one of these cells — so any future insert outside the set
        provably cannot match the query.  The query-result cache keys its
        invalidation on exactly this set.  With ``lattice_cap`` set, returns
        ``None`` instead of enumerating a lattice larger than the cap
        (callers degrade to coarse invalidation).
        """
        dimensions = len(rectangle)
        if lattice_cap is not None and self.cells_per_dim ** dimensions > lattice_cap:
            return None
        if margin <= 0:
            return set()
        width = 1.0 / self.cells_per_dim
        axis_distances = [
            [min_attribute_distance(interval, (index * width,
                                               (index + 1) * width))
             for index in range(self.cells_per_dim)]
            for interval in rectangle
        ]
        within: Set[Tuple[int, ...]] = set()
        for coordinates in itertools.product(range(self.cells_per_dim),
                                             repeat=dimensions):
            total = 0.0
            for dimension, coordinate in enumerate(coordinates):
                total += axis_distances[dimension][coordinate]
                if total >= margin:
                    break
            else:
                within.add(coordinates)
        return within

    def home_cell(self, synopsis: RecordSynopsis) -> Tuple[int, ...]:
        """Anchor cell of a synopsis: the cell of its rectangle's min corner."""
        return tuple(self._bucket(low)
                     for low, _ in synopsis.coordinate_rectangle())

    def region_of(self, synopsis: RecordSynopsis, regions: int) -> int:
        """Deterministic region id in ``[0, regions)`` for one synopsis.

        The grid space is partitioned by the synopsis' home cell, so tuples
        that land in the same neighbourhood share a region.  The micro-batch
        executor uses this hook to shard candidate-pair refinement work
        across a process pool; any other sharded deployment (per-region
        workers, per-region grids) can reuse the same partitioning.
        """
        if regions <= 1:
            return 0
        value = 0
        for coordinate in self.home_cell(synopsis):
            value = value * self.cells_per_dim + coordinate
        return value % regions

    def region_of_cell(self, coordinates: Tuple[int, ...],
                       regions: int) -> int:
        """Region id of one cell — the same flattening as :meth:`region_of`.

        A synopsis' home cell maps to the synopsis' own region, so routing a
        record's delta to the regions of all its touched cells always covers
        the region that will evaluate its lookup.
        """
        if regions <= 1:
            return 0
        value = 0
        for coordinate in coordinates:
            value = value * self.cells_per_dim + coordinate
        return value % regions

    # -- maintenance ----------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._synopses)

    @property
    def cell_count(self) -> int:
        return len(self._cells)

    @property
    def mutation_count(self) -> int:
        """Monotone count of grid mutations (inserts + removals).

        The sharded worker pool compares it against the count recorded
        after its last batch to decide whether a residency reconciliation
        sweep is needed at all — in steady state (every mutation flowing
        through the batch ops) the counts match and the O(window) sweep is
        skipped; any out-of-band mutation (checkpoint restore, event-time
        retraction) bumps it and forces the full diff.
        """
        return self._mutations

    def add_maintenance_listener(self, listener) -> None:
        """Subscribe to grid mutations: ``listener(cell_coordinates)`` runs
        after every :meth:`insert` / :meth:`remove` with the coordinates of
        the cells the mutation touched.  Every window-maintenance path —
        arrival insertion, count-based expiry, event-time retraction and
        checkpoint restore — flows through those two methods, so this is
        the single chokepoint the query-result cache keys its region-based
        invalidation on."""
        self._maintenance_listeners.append(listener)

    def _notify_maintenance(self, cell_keys: List[Tuple[int, ...]]) -> None:
        for listener in self._maintenance_listeners:
            listener(cell_keys)

    def contains(self, rid: str, source: str) -> bool:
        return (rid, source) in self._synopses

    def get_synopsis(self, rid: str, source: str) -> Optional[RecordSynopsis]:
        return self._synopses.get((rid, source))

    def insert(self, synopsis: RecordSynopsis) -> None:
        """Insert one imputed tuple (Algorithm 2, lines 11–13)."""
        key = (synopsis.record.rid, synopsis.record.source)
        if key in self._synopses:
            self.remove(*key)
        self._mutations += 1
        rectangle = synopsis.coordinate_rectangle()
        cell_keys: List[Tuple[int, ...]] = []
        for coordinates in self._cells_for_rectangle(rectangle):
            cell = self._cells.get(coordinates)
            if cell is None:
                cell = GridCell(coordinates=coordinates)
                self._cells[coordinates] = cell
            cell.add(synopsis, self.schema)
            if self._cell_store is not None:
                self._cell_store.update(cell, journal=self.journal)
                if self.journal is not None:
                    self.journal.record(
                        ("a", coordinates,
                         self._cell_store.row_of(coordinates), key,
                         tuple(cell.distance_intervals)))
            cell_keys.append(coordinates)
        self._record_cells[key] = cell_keys
        self._synopses[key] = synopsis
        if self._packed_store is not None:
            self._packed_store.insert(synopsis)
        if self._maintenance_listeners:
            self._notify_maintenance(cell_keys)

    def remove(self, rid: str, source: str) -> bool:
        """Evict one (expired) tuple (Algorithm 2, lines 2–7)."""
        key = (rid, source)
        cell_keys = self._record_cells.pop(key, None)
        if cell_keys is None:
            return False
        self._mutations += 1
        for coordinates in cell_keys:
            cell = self._cells.get(coordinates)
            if cell is None:
                continue
            cell.remove(rid, source, self.schema)
            if not cell.entries:
                del self._cells[coordinates]
                if self._cell_store is not None:
                    self._cell_store.remove(coordinates)
                    if self.journal is not None:
                        self.journal.record(("d", coordinates, key))
            elif self._cell_store is not None:
                self._cell_store.update(cell, journal=self.journal)
                if self.journal is not None:
                    self.journal.record(
                        ("r", coordinates,
                         self._cell_store.row_of(coordinates), key,
                         tuple(cell.distance_intervals)))
        del self._synopses[key]
        if self._packed_store is not None:
            self._packed_store.remove(rid, source)
        if self._maintenance_listeners:
            self._notify_maintenance(cell_keys)
        return True

    def synopses(self) -> List[RecordSynopsis]:
        """All in-window synopses (used by exhaustive baselines and tests)."""
        return list(self._synopses.values())

    def synopsis_items(self) -> List[Tuple[Tuple[str, str], RecordSynopsis]]:
        """``((rid, source), synopsis)`` pairs in grid insertion order.

        The sharded worker pool reconciles its resident replicas against
        this view each batch (identity-checked), which is what makes the
        residency protocol self-healing after a checkpoint restore or an
        out-of-band retraction.
        """
        return list(self._synopses.items())

    def record_cells(self, rid: str, source: str) -> List[Tuple[int, ...]]:
        """Coordinates of the cells one in-window record touches.

        The shm-plane executor routes each record's delta to the regions of
        these cells (plus the record's own region).
        """
        return self._record_cells.get((rid, source), [])

    def cell_table(self) -> List[Tuple[Tuple[int, ...], int,
                                       List[Tuple[str, str]]]]:
        """``(coordinates, store_row, member_keys)`` per cell, in grid order.

        The reset payload shm workers rebuild their membership mirror from;
        requires the cell store to be enabled.
        """
        store = self._cell_store
        return [(coordinates, store.row_of(coordinates),
                 list(cell.entries.keys()))
                for coordinates, cell in self._cells.items()]

    # -- candidate retrieval -------------------------------------------------------
    def _cell_min_distance(self, cell: GridCell,
                           rectangle: Sequence[Tuple[float, float]]) -> float:
        """Lower bound of Σ_k |X_k − Y_k| between the query tuple and the cell."""
        if cell.distance_intervals is None:
            return float("inf")
        total = 0.0
        for (query_low, query_high), (cell_low, cell_high) in zip(
                rectangle, cell.distance_intervals):
            total += min_attribute_distance((query_low, query_high),
                                            (cell_low, cell_high))
        return total

    def candidate_synopses(
        self,
        query: RecordSynopsis,
        gamma: float,
        keywords: FrozenSet[str] = frozenset(),
        exclude_source: Optional[str] = None,
    ) -> List[RecordSynopsis]:
        """Candidate matching tuples of ``query`` from the grid.

        Cells are pruned with two aggregate tests before their tuples are
        touched:

        * **topic** — when a keyword set is given and the query tuple cannot
          contain any keyword, cells with no keyword-bearing tuple are
          skipped (cell-level Theorem 4.1);
        * **similarity** — cells whose minimum converted-space L1 distance to
          the query rectangle is at least ``d − γ`` cannot contain a tuple
          with similarity above ``γ`` (cell-level Lemma 4.2).

        ``exclude_source`` removes same-stream tuples (the problem statement
        pairs tuples from two *different* streams).
        """
        rectangle = query.coordinate_rectangle()
        margin = len(self.schema) - gamma
        seen: Set[Tuple[str, str]] = set()
        results: List[RecordSynopsis] = []
        if self._cell_store is not None and self._cells:
            # Vectorized cell scan: both aggregate tests for every cell in
            # one batch_cell_scan kernel call; surviving cells are then
            # collected in the same iteration order as the scalar walk, so
            # the candidate list (and both examination counters) are
            # bit-identical.
            store = self._cell_store
            self.cells_examined += len(self._cells)
            alive = store.scan(
                rectangle, margin,
                require_keyword=bool(keywords) and not query.may_have_keyword)
            for coordinates, cell in self._cells.items():
                if not alive[store.row_of(coordinates)]:
                    continue
                self._collect_cell(cell, query, seen, results, exclude_source)
            return results
        for cell in self._cells.values():
            self.cells_examined += 1
            if keywords and not query.may_have_keyword and not cell.may_have_keyword:
                continue
            if self._cell_min_distance(cell, rectangle) >= margin:
                continue
            self._collect_cell(cell, query, seen, results, exclude_source)
        return results

    def _collect_cell(self, cell: GridCell, query: RecordSynopsis,
                      seen: Set[Tuple[str, str]],
                      results: List[RecordSynopsis],
                      exclude_source: Optional[str]) -> None:
        """Gather one surviving cell's tuples (shared by both scan paths)."""
        for key, synopsis in cell.entries.items():
            if key in seen:
                continue
            seen.add(key)
            self.tuples_examined += 1
            if exclude_source is not None and synopsis.record.source == exclude_source:
                continue
            if (synopsis.record.rid == query.record.rid
                    and synopsis.record.source == query.record.source):
                continue
            results.append(synopsis)
