"""The DR-index ``I_R`` over the data repository (Section 5.1, Figure 3).

Every repository sample ``s`` is converted into a ``d``-dimensional point
whose ``x``-th coordinate is the Jaccard distance of ``s[A_x]`` to the main
pivot of attribute ``A_x``.  The points are indexed in an aR-tree whose
aggregates hold, per node,

* a keyword/topic bit-vector (union of the keywords present below the node);
* per-attribute intervals bounding the distances to the auxiliary pivots;
* per-attribute intervals bounding the token-set sizes.

At imputation time, given an incomplete tuple and a CDD rule, the index
returns the samples that can possibly satisfy the rule's determinant
constraints: by the triangle inequality a sample whose main-pivot coordinate
differs from the record's by more than the rule's ``ε_max`` can never be
within distance ``ε_max`` of the record, and a constant constraint pins the
coordinate exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.core.similarity import text_distance, tokenize
from repro.core.tuples import Record, Schema
from repro.imputation.cdd import (
    CONSTRAINT_CONSTANT,
    CONSTRAINT_INTERVAL,
    CDDRule,
)
from repro.imputation.repository import DataRepository
from repro.indexes.artree import Aggregator, ARTree, Rect
from repro.indexes.pivots import PivotTable


@dataclass(frozen=True)
class DRAggregate:
    """aR-tree aggregate of the DR-index.

    ``keywords`` is the set of query-relevant keywords appearing below the
    node (the paper's boolean vector ``V_e``); ``auxiliary_intervals`` maps
    ``(attribute, pivot_index)`` to a distance interval; ``token_size_intervals``
    maps attribute to a token-size interval.
    """

    keywords: FrozenSet[str]
    auxiliary_intervals: Tuple[Tuple[Tuple[str, int], Tuple[float, float]], ...]
    token_size_intervals: Tuple[Tuple[str, Tuple[int, int]], ...]


def _merge_interval_maps(
    left: Tuple[Tuple, ...], right: Tuple[Tuple, ...]
) -> Tuple[Tuple, ...]:
    merged: Dict = {}
    for key, (low, high) in left:
        merged[key] = (low, high)
    for key, (low, high) in right:
        if key in merged:
            old_low, old_high = merged[key]
            merged[key] = (min(old_low, low), max(old_high, high))
        else:
            merged[key] = (low, high)
    return tuple(sorted(merged.items()))


def _merge_dr_aggregates(left: DRAggregate, right: DRAggregate) -> DRAggregate:
    return DRAggregate(
        keywords=left.keywords | right.keywords,
        auxiliary_intervals=_merge_interval_maps(left.auxiliary_intervals,
                                                 right.auxiliary_intervals),
        token_size_intervals=_merge_interval_maps(left.token_size_intervals,
                                                  right.token_size_intervals),
    )


class DRIndex:
    """aR-tree index over the converted repository samples."""

    def __init__(self, repository: DataRepository, pivots: PivotTable,
                 keywords: Iterable[str] = (), max_entries: int = 16) -> None:
        self.repository = repository
        self.pivots = pivots
        self.schema: Schema = repository.schema
        self.keywords = frozenset(keyword.lower() for keyword in keywords)
        self.nodes_visited = 0
        self._tree = ARTree(
            dimensions=self.schema.dimensionality,
            max_entries=max_entries,
            aggregator=Aggregator(from_payload=self._sample_aggregate,
                                  merge=_merge_dr_aggregates),
        )
        self._attribute_order = list(self.schema)
        for sample in repository.samples:
            self._tree.insert_point(self._sample_point(sample), sample)

    # -- construction helpers ------------------------------------------------
    def _sample_point(self, sample: Record) -> List[float]:
        """Main-pivot coordinates of one repository sample."""
        return [
            text_distance(sample[attribute], self.pivots.main_pivot(attribute))
            for attribute in self._attribute_order
        ]

    def _sample_aggregate(self, rect: Rect, sample: Record) -> DRAggregate:
        present_keywords = frozenset(
            keyword for keyword in self.keywords
            if keyword in sample.all_tokens(self.schema)
        )
        auxiliary: List[Tuple[Tuple[str, int], Tuple[float, float]]] = []
        sizes: List[Tuple[str, Tuple[int, int]]] = []
        for attribute in self._attribute_order:
            value = sample[attribute]
            assert value is not None
            for index, pivot_value in enumerate(
                    self.pivots.auxiliary_pivots(attribute), start=1):
                distance = text_distance(value, pivot_value)
                auxiliary.append(((attribute, index), (distance, distance)))
            size = len(tokenize(value))
            sizes.append((attribute, (size, size)))
        return DRAggregate(keywords=present_keywords,
                           auxiliary_intervals=tuple(auxiliary),
                           token_size_intervals=tuple(sizes))

    # -- basic info -------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._tree)

    @property
    def height(self) -> int:
        return self._tree.height()

    def root_keywords(self) -> FrozenSet[str]:
        """Keywords present anywhere in the repository (root aggregate)."""
        aggregate = self._tree.root_aggregate
        return aggregate.keywords if aggregate else frozenset()

    # -- dynamic maintenance (Section 5.5) ----------------------------------------
    def index_sample(self, sample: Record) -> None:
        """Index one sample that is *already* part of the repository.

        Use when the caller owns the repository mutation (e.g. the engine's
        ``add_repository_samples``, which adds the sample to ``R`` explicitly
        and then indexes it); :meth:`insert_sample` does both in one call.
        """
        self._tree.insert_point(self._sample_point(sample), sample)

    def insert_sample(self, sample: Record) -> None:
        """Add one new complete sample to both the repository and the index."""
        self.repository.add_sample(sample)
        self.index_sample(sample)

    # -- queries --------------------------------------------------------------------
    def query_rect_for_rule(self, record: Record,
                            rule: CDDRule) -> Optional[Rect]:
        """The converted-space query rectangle implied by a rule and a record.

        Returns ``None`` when the rule cannot be evaluated on the record
        (a determinant value is missing).
        """
        intervals: List[Tuple[float, float]] = []
        for attribute in self._attribute_order:
            constraint = rule.constraint_for(attribute)
            if constraint is None or constraint.kind not in (
                    CONSTRAINT_CONSTANT, CONSTRAINT_INTERVAL):
                intervals.append((0.0, 1.0))
                continue
            value = record[attribute]
            if value is None:
                return None
            coordinate = text_distance(value, self.pivots.main_pivot(attribute))
            if constraint.kind == CONSTRAINT_CONSTANT:
                # The sample must equal the constant, whose coordinate equals
                # the record's coordinate (the record matches the constant).
                intervals.append((max(0.0, coordinate - 1e-9),
                                  min(1.0, coordinate + 1e-9)))
            else:
                _, epsilon_max = constraint.interval
                intervals.append((max(0.0, coordinate - epsilon_max),
                                  min(1.0, coordinate + epsilon_max)))
        return Rect.from_intervals(intervals)

    def candidate_samples(self, record: Record, rule: CDDRule) -> List[Record]:
        """Repository samples that may satisfy the rule w.r.t. ``record``.

        The returned superset still has to be verified exactly with
        :meth:`CDDRule.matches_sample`; the index only guarantees no false
        dismissals (triangle inequality).
        """
        query = self.query_rect_for_rule(record, rule)
        if query is None:
            return []
        results, visited = self._tree.traverse(
            node_filter=lambda rect, aggregate: rect.intersects(query),
            entry_filter=lambda entry: entry.rect.intersects(query),
        )
        self.nodes_visited += visited
        return [entry.payload for entry in results]

    def make_retriever(self):
        """A ``SampleRetriever`` hook for :class:`~repro.imputation.imputer.CDDImputer`."""
        def retriever(record: Record, rule: CDDRule) -> Sequence[Record]:
            return self.candidate_samples(record, rule)
        return retriever

    def range_query(self, intervals: Sequence[Tuple[float, float]]) -> List[Record]:
        """Raw converted-space range query (used by tests and the index join)."""
        entries = self._tree.range_search(Rect.from_intervals(intervals))
        return [entry.payload for entry in entries]
