"""Synthetic dataset generators (two-source streams, repository, ground truth)."""

from repro.datasets.synthetic import (
    DATASET_PROFILES,
    DatasetProfile,
    Workload,
    build_repository,
    dataset_statistics,
    generate_clean_sources,
    generate_dataset,
    inject_missing_values,
)
from repro.datasets.vocab import (
    BASE_VOCABULARY,
    DOMAIN_SCHEMAS,
    TOPIC_CLUSTERS,
    cluster_tokens,
    topic_keywords,
)

__all__ = [
    "BASE_VOCABULARY",
    "DATASET_PROFILES",
    "DOMAIN_SCHEMAS",
    "DatasetProfile",
    "TOPIC_CLUSTERS",
    "Workload",
    "build_repository",
    "cluster_tokens",
    "dataset_statistics",
    "generate_clean_sources",
    "generate_dataset",
    "inject_missing_values",
    "topic_keywords",
]
