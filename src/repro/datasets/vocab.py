"""Vocabularies used by the synthetic dataset generators.

The paper evaluates on five real entity-matching datasets (Citations, Anime,
Bikes, EBooks, Songs).  Those corpora are not redistributable here, so the
generators in :mod:`repro.datasets.synthetic` build structurally equivalent
synthetic corpora: two sources with overlapping entities, textual attributes
whose values are token strings drawn from topic-clustered vocabularies, and
per-attribute token-length profiles that mimic the originals (e.g. EBooks'
long ``description`` attribute).

This module holds the word material: a base vocabulary of filler tokens and
per-domain topic clusters whose *topic tokens* double as query keywords.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

#: Generic filler tokens shared by every domain (they create realistic token
#: overlap between non-matching records).
BASE_VOCABULARY: Tuple[str, ...] = (
    "alpha", "bravo", "carbon", "delta", "ember", "fable", "gamma", "harbor",
    "indigo", "jasper", "kernel", "lumen", "meadow", "nectar", "onyx",
    "prism", "quartz", "raven", "saffron", "timber", "umber", "velvet",
    "willow", "xenon", "yonder", "zephyr", "anchor", "breeze", "cascade",
    "drift", "echo", "flint", "grove", "halcyon", "iris", "juniper",
    "keystone", "lattice", "mosaic", "nimbus", "orchid", "pebble", "quiver",
    "ripple", "summit", "thistle", "undertow", "vertex", "wander", "zenith",
    "copper", "marble", "cedar", "violet", "amber", "slate", "coral",
    "ivory", "crimson", "sable", "plume", "vista", "haven", "ridge",
    "meridian", "solstice", "aurora", "basalt", "cobalt", "dune",
)

#: Topic clusters per dataset domain.  Each cluster maps a *topic keyword*
#: (usable as a TER-iDS query keyword) to tokens characteristic of entities
#: about that topic.
TOPIC_CLUSTERS: Dict[str, Dict[str, Tuple[str, ...]]] = {
    "citations": {
        "databases": ("query", "index", "transaction", "storage", "relational",
                      "sql", "optimizer", "join", "schema", "warehouse"),
        "learning": ("neural", "training", "gradient", "classifier", "embedding",
                     "model", "feature", "label", "inference", "network"),
        "streams": ("window", "sliding", "online", "continuous", "arrival",
                    "latency", "synopsis", "sketch", "sampling", "velocity"),
        "graphs": ("vertex", "edge", "traversal", "community", "pagerank",
                   "subgraph", "motif", "clique", "partition", "centrality"),
    },
    "anime": {
        "mecha": ("robot", "pilot", "colony", "gundam", "armor", "squadron",
                  "reactor", "hangar", "battle", "frontier"),
        "fantasy": ("guild", "dungeon", "dragon", "mage", "quest", "sword",
                    "kingdom", "prophecy", "relic", "portal"),
        "romance": ("school", "confession", "festival", "letter", "club",
                    "senpai", "classroom", "promise", "summer", "diary"),
        "sports": ("tournament", "coach", "stadium", "rival", "training",
                   "championship", "team", "serve", "sprint", "finals"),
    },
    "bikes": {
        "cruiser": ("chrome", "saddle", "lowrider", "torque", "highway",
                    "exhaust", "leather", "vtwin", "chopper", "boulevard"),
        "sport": ("fairing", "supersport", "litre", "slipper", "quickshifter",
                  "redline", "apex", "track", "aero", "telemetry"),
        "commuter": ("mileage", "scooter", "urban", "fuel", "economy",
                     "storage", "traffic", "practical", "budget", "daily"),
        "offroad": ("trail", "enduro", "knobby", "suspension", "motocross",
                    "terrain", "mudguard", "rally", "dirt", "crosser"),
    },
    "ebooks": {
        "mystery": ("detective", "alibi", "suspect", "clue", "inspector",
                    "murder", "witness", "archive", "cipher", "confession"),
        "scifi": ("starship", "colony", "android", "terraform", "warp",
                  "asteroid", "protocol", "singularity", "orbit", "beacon"),
        "history": ("empire", "dynasty", "archive", "treaty", "expedition",
                    "manuscript", "chronicle", "siege", "monarch", "frontier"),
        "selfhelp": ("habit", "mindset", "routine", "focus", "productivity",
                     "journal", "gratitude", "discipline", "momentum", "clarity"),
    },
    "songs": {
        "rock": ("guitar", "riff", "amplifier", "drummer", "anthem", "stage",
                 "chorus", "distortion", "vinyl", "tour"),
        "electronic": ("synth", "bassline", "drop", "sampler", "remix",
                       "sequencer", "club", "tempo", "filter", "modular"),
        "folk": ("banjo", "ballad", "harvest", "river", "porch", "acoustic",
                 "lantern", "hollow", "caravan", "prairie"),
        "jazz": ("saxophone", "swing", "quartet", "improvisation", "brass",
                 "lounge", "standard", "bebop", "trumpet", "midnight"),
    },
    "health": {
        "diabetes": ("diabetes", "insulin", "glucose", "bloodsugar", "dietary",
                     "metformin", "thirst", "fatigue", "weightloss", "vision"),
        "flu": ("flu", "fever", "cough", "congestion", "rest", "fluids",
                "chills", "ache", "virus", "season"),
        "allergy": ("allergy", "pollen", "antihistamine", "rash", "itchy",
                    "sneeze", "eyedrop", "dust", "hives", "swelling"),
        "cardio": ("heart", "pressure", "cholesterol", "statin", "exercise",
                   "palpitation", "artery", "monitor", "sodium", "stress"),
    },
}

#: Extra "long-tail" topic clusters added to every domain.  The paper's topic
#: keyword set selects only a small fraction of the stream tuples (which is
#: why topic-keyword pruning removes the bulk of candidate pairs in Figure
#: 4); giving every domain additional minority topics reproduces that shape.
_EXTRA_CLUSTER_SUFFIXES: Tuple[str, ...] = (
    "field", "works", "corner", "signal", "digest", "circle", "review", "notes",
)


def _extra_clusters(domain: str, count: int = 4) -> Dict[str, Tuple[str, ...]]:
    clusters: Dict[str, Tuple[str, ...]] = {}
    for index in range(count):
        name = f"{domain}misc{index}"
        clusters[name] = tuple(
            f"{domain}{index}{suffix}" for suffix in _EXTRA_CLUSTER_SUFFIXES)
    return clusters


for _domain in list(TOPIC_CLUSTERS):
    TOPIC_CLUSTERS[_domain].update(_extra_clusters(_domain))


#: Attribute schemas per dataset domain (identifier column excluded).
DOMAIN_SCHEMAS: Dict[str, Tuple[str, ...]] = {
    "citations": ("title", "authors", "venue", "year_terms"),
    "anime": ("title", "genres", "studio", "synopsis"),
    "bikes": ("model", "brand", "specs", "description"),
    "ebooks": ("title", "author", "publisher", "description"),
    "songs": ("title", "artist", "album", "tags"),
    "health": ("gender", "symptom", "diagnosis", "treatment"),
}


def topic_keywords(domain: str) -> List[str]:
    """The topic keywords (cluster names) available for one domain."""
    return list(TOPIC_CLUSTERS[domain])


def cluster_tokens(domain: str, topic: str) -> Tuple[str, ...]:
    """Tokens characteristic of one topic cluster."""
    return TOPIC_CLUSTERS[domain][topic]
