"""Synthetic dataset generators emulating the paper's five real datasets.

The evaluation of the paper (Table 4) uses Citations, Anime, Bikes, EBooks
and Songs — two-source entity-matching corpora with known duplicate pairs.
Those corpora cannot be bundled here, so :func:`generate_dataset` produces
seeded synthetic equivalents with the structural properties the TER-iDS
evaluation depends on:

* two sources (two incomplete data streams) with a controlled number of
  duplicated entities (the ground truth);
* textual attributes whose values are token strings; duplicated entities
  appear in both sources with perturbed token sets (high but not perfect
  Jaccard similarity), non-duplicates are drawn independently;
* topic-clustered vocabularies so that topic keywords select a subset of the
  entities (the "topic-aware" part of TER-iDS);
* a complete historical *repository* drawn from the same distribution;
* per-attribute token-length profiles (EBooks has a long ``description``
  attribute, mirroring the paper's observation that it dominates the cost);
* a configurable missing rate ``ξ`` and number of missing attributes ``m``.

Scales are reduced relative to the originals so the pure-Python pipeline
stays laptop-friendly; the ``scale`` argument rescales them when needed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.core.tuples import Record, Schema
from repro.datasets.vocab import BASE_VOCABULARY, DOMAIN_SCHEMAS, TOPIC_CLUSTERS
from repro.imputation.repository import DataRepository
from repro.metrics.accuracy import PairKey, pair_key


@dataclass(frozen=True)
class DatasetProfile:
    """Shape of one synthetic dataset (scaled-down analogue of Table 4)."""

    name: str
    domain: str
    source_a_size: int
    source_b_size: int
    match_count: int
    tokens_per_attribute: Tuple[Tuple[int, int], ...]
    perturbation: float = 0.2
    description: str = ""

    @property
    def attributes(self) -> Tuple[str, ...]:
        return DOMAIN_SCHEMAS[self.domain]

    @property
    def schema(self) -> Schema:
        return Schema(attributes=self.attributes)


#: Scaled-down analogues of the paper's Table 4 datasets.  Relative ordering
#: of sizes and token-length profiles mirrors the originals: Songs is the
#: largest, EBooks has by far the longest textual attribute.
DATASET_PROFILES: Dict[str, DatasetProfile] = {
    "citations": DatasetProfile(
        name="citations", domain="citations",
        source_a_size=90, source_b_size=80, match_count=40,
        tokens_per_attribute=((5, 9), (3, 6), (2, 4), (1, 2)),
        perturbation=0.15,
        description="DBLP-ACM citation pairs (scaled synthetic analogue)",
    ),
    "anime": DatasetProfile(
        name="anime", domain="anime",
        source_a_size=110, source_b_size=110, match_count=55,
        tokens_per_attribute=((3, 6), (2, 4), (1, 3), (6, 10)),
        perturbation=0.15,
        description="MyAnimeList-AnimePlanet pairs (scaled synthetic analogue)",
    ),
    "bikes": DatasetProfile(
        name="bikes", domain="bikes",
        source_a_size=120, source_b_size=150, match_count=60,
        tokens_per_attribute=((2, 4), (1, 2), (4, 7), (6, 10)),
        perturbation=0.15,
        description="Bikedekho-Bikewale pairs (scaled synthetic analogue)",
    ),
    "ebooks": DatasetProfile(
        name="ebooks", domain="ebooks",
        source_a_size=110, source_b_size=150, match_count=60,
        tokens_per_attribute=((3, 6), (2, 3), (1, 3), (14, 22)),
        perturbation=0.15,
        description="iTunes-eBooks pairs; long description attribute",
    ),
    "songs": DatasetProfile(
        name="songs", domain="songs",
        source_a_size=170, source_b_size=170, match_count=80,
        tokens_per_attribute=((3, 6), (2, 4), (2, 4), (3, 6)),
        perturbation=0.15,
        description="Million-song self-join (scaled synthetic analogue)",
    ),
    "health": DatasetProfile(
        name="health", domain="health",
        source_a_size=80, source_b_size=80, match_count=40,
        tokens_per_attribute=((1, 1), (3, 6), (1, 2), (2, 4)),
        perturbation=0.15,
        description="Online health community posts (the paper's Example 1)",
    ),
}


@dataclass
class Workload:
    """Everything one experiment run needs."""

    profile: DatasetProfile
    schema: Schema
    stream_a: List[Record]
    stream_b: List[Record]
    repository: DataRepository
    ground_truth: Set[PairKey]
    keywords: FrozenSet[str]
    topic_entities: Set[str] = field(default_factory=set)

    @property
    def name(self) -> str:
        return self.profile.name

    def interleaved_records(self) -> List[Record]:
        """Round-robin interleaving of both streams (arrival order)."""
        merged: List[Record] = []
        for index in range(max(len(self.stream_a), len(self.stream_b))):
            if index < len(self.stream_a):
                merged.append(self.stream_a[index])
            if index < len(self.stream_b):
                merged.append(self.stream_b[index])
        return merged

    def total_stream_size(self) -> int:
        return len(self.stream_a) + len(self.stream_b)


class _EntityFactory:
    """Generates entities and their (perturbed) record views."""

    def __init__(self, profile: DatasetProfile, rng: random.Random) -> None:
        self.profile = profile
        self.rng = rng
        self.clusters = TOPIC_CLUSTERS[profile.domain]
        self.topics = list(self.clusters)

    def _attribute_tokens(self, topic: str, attribute_index: int,
                          signature: List[str]) -> List[str]:
        low, high = self.profile.tokens_per_attribute[attribute_index]
        length = self.rng.randint(low, high)
        topic_tokens = list(self.clusters[topic])
        tokens: List[str] = []
        # The first token is usually the topic keyword, one token is an
        # entity-specific signature token (real records repeat the entity
        # name / model across attributes, which is what makes one attribute
        # predictive of another and CDD rules tight), the rest mixes topic
        # and filler vocabulary.
        for position in range(length):
            if position == 0 and self.rng.random() < 0.8:
                tokens.append(topic)
            elif position == 1 or (length == 1 and self.rng.random() < 0.5):
                tokens.append(self.rng.choice(signature))
            elif self.rng.random() < 0.5:
                tokens.append(self.rng.choice(topic_tokens))
            else:
                tokens.append(self.rng.choice(BASE_VOCABULARY))
        return tokens

    def make_entity(self, entity_id: int) -> Tuple[str, Dict[str, List[str]]]:
        """One latent entity: its topic and per-attribute token lists."""
        topic = self.topics[entity_id % len(self.topics)]
        signature = [f"ent{entity_id}sig{j}" for j in range(2)]
        values = {
            attribute: self._attribute_tokens(topic, index, signature)
            for index, attribute in enumerate(self.profile.attributes)
        }
        return topic, values

    def perturb(self, tokens: Sequence[str]) -> List[str]:
        """A noisy copy of a token list (drop / substitute a few tokens)."""
        out: List[str] = []
        for token in tokens:
            roll = self.rng.random()
            if roll < self.profile.perturbation / 2:
                continue  # drop
            if roll < self.profile.perturbation:
                out.append(self.rng.choice(BASE_VOCABULARY))  # substitute
            else:
                out.append(token)
        if not out:
            out = [tokens[0]]
        return out

    def record_from(self, rid: str, values: Dict[str, List[str]], source: str,
                    perturbed: bool) -> Record:
        rendered = {}
        for attribute, tokens in values.items():
            chosen = self.perturb(tokens) if perturbed else list(tokens)
            rendered[attribute] = " ".join(chosen)
        return Record(rid=rid, values=rendered, source=source)


def _scaled(value: int, scale: float) -> int:
    return max(2, int(round(value * scale)))


def generate_clean_sources(
    profile: DatasetProfile, scale: float, rng: random.Random
) -> Tuple[List[Record], List[Record], Set[PairKey], Dict[str, str],
           _EntityFactory, List[Dict[str, List[str]]]]:
    """Two complete sources with overlapping entities and their ground truth.

    Also returns the pool of latent entity value dictionaries, which the
    repository builder reuses: the paper's data repository is "collected /
    inferred by historical stream data" (Section 2.2), so a share of the
    repository samples are historical (perturbed) views of stream entities.
    """
    factory = _EntityFactory(profile, rng)
    size_a = _scaled(profile.source_a_size, scale)
    size_b = _scaled(profile.source_b_size, scale)
    matches = min(_scaled(profile.match_count, scale), size_a, size_b)

    source_a: List[Optional[Record]] = [None] * size_a
    source_b: List[Optional[Record]] = [None] * size_b
    ground_truth: Set[PairKey] = set()
    record_topics: Dict[str, str] = {}
    entity_pool: List[Dict[str, List[str]]] = []

    # Matched entities appear in both sources *at the same stream position*,
    # so that the round-robin interleaving delivers the two views of an
    # entity close together in time and they co-reside in the sliding
    # windows (the streaming analogue of the original datasets, where both
    # sources enumerate roughly the same entity population).
    shared_positions = rng.sample(range(min(size_a, size_b)), matches)
    entity_counter = 0
    for match_index, position in enumerate(shared_positions):
        topic, values = factory.make_entity(entity_counter)
        entity_pool.append(values)
        entity_counter += 1
        rid_a = f"a{match_index}"
        rid_b = f"b{match_index}"
        source_a[position] = factory.record_from(rid_a, values, "stream-a",
                                                 perturbed=False)
        source_b[position] = factory.record_from(rid_b, values, "stream-b",
                                                 perturbed=True)
        ground_truth.add(pair_key("stream-a", rid_a, "stream-b", rid_b))
        record_topics[f"stream-a/{rid_a}"] = topic
        record_topics[f"stream-b/{rid_b}"] = topic

    # Source-exclusive entities fill the remaining positions.
    exclusive_index = matches
    for position in range(size_a):
        if source_a[position] is not None:
            continue
        topic, values = factory.make_entity(entity_counter)
        entity_pool.append(values)
        entity_counter += 1
        rid = f"a{exclusive_index}"
        exclusive_index += 1
        source_a[position] = factory.record_from(rid, values, "stream-a",
                                                 perturbed=False)
        record_topics[f"stream-a/{rid}"] = topic
    for position in range(size_b):
        if source_b[position] is not None:
            continue
        topic, values = factory.make_entity(entity_counter)
        entity_pool.append(values)
        entity_counter += 1
        rid = f"b{exclusive_index}"
        exclusive_index += 1
        source_b[position] = factory.record_from(rid, values, "stream-b",
                                                 perturbed=False)
        record_topics[f"stream-b/{rid}"] = topic

    completed_a = [record for record in source_a if record is not None]
    completed_b = [record for record in source_b if record is not None]
    return (completed_a, completed_b, ground_truth, record_topics, factory,
            entity_pool)


def inject_missing_values(
    records: Sequence[Record],
    schema: Schema,
    missing_rate: float,
    missing_attributes: int,
    rng: random.Random,
) -> List[Record]:
    """Mark ``missing_attributes`` random attributes missing in ``ξ`` of the records."""
    if not 0.0 <= missing_rate <= 1.0:
        raise ValueError(f"missing_rate must be in [0, 1], got {missing_rate}")
    if not 1 <= missing_attributes <= len(schema):
        raise ValueError(
            f"missing_attributes must be in [1, {len(schema)}], got {missing_attributes}")
    out: List[Record] = []
    attribute_names = list(schema)
    for record in records:
        if rng.random() < missing_rate:
            chosen = rng.sample(attribute_names, missing_attributes)
            values = dict(record.values)
            for attribute in chosen:
                values[attribute] = None
            out.append(Record(rid=record.rid, values=values, source=record.source,
                              timestamp=record.timestamp))
        else:
            out.append(record)
    return out


def build_repository(
    factory: _EntityFactory,
    schema: Schema,
    size: int,
    rng: random.Random,
    entity_pool: Optional[Sequence[Dict[str, List[str]]]] = None,
    overlap: float = 0.5,
) -> DataRepository:
    """A repository of complete historical records.

    Section 2.2 of the paper assumes the repository is collected/inferred
    from historical stream data, so (when an ``entity_pool`` is supplied) a
    fraction ``overlap`` of the samples are perturbed historical views of
    stream entities; the remainder are fresh entities from the same topic
    distribution.  This is what lets CDD imputation recover values close to
    the true missing ones.
    """
    samples: List[Record] = []
    for index in range(size):
        if entity_pool and rng.random() < overlap:
            values = rng.choice(list(entity_pool))
            samples.append(factory.record_from(f"rep{index}", values,
                                               "repository", perturbed=True))
        else:
            _, values = factory.make_entity(10_000 + index)
            samples.append(factory.record_from(f"rep{index}", values,
                                               "repository", perturbed=False))
    return DataRepository(schema=schema, samples=samples)


def generate_dataset(
    name: str,
    missing_rate: float = 0.3,
    missing_attributes: int = 1,
    repository_ratio: float = 0.3,
    keyword_count: int = 2,
    scale: float = 1.0,
    seed: int = 7,
) -> Workload:
    """Generate one complete TER-iDS workload.

    Parameters mirror Table 5 of the paper: ``missing_rate`` is ``ξ``,
    ``missing_attributes`` is ``m`` and ``repository_ratio`` is ``η`` (the
    repository holds ``η`` times the total stream size in complete records).
    ``keyword_count`` topics are chosen as the query keyword set ``K``.
    """
    if name not in DATASET_PROFILES:
        raise KeyError(f"unknown dataset profile {name!r}; "
                       f"available: {sorted(DATASET_PROFILES)}")
    profile = DATASET_PROFILES[name]
    schema = profile.schema
    # Independent random streams so that varying one knob (e.g. the
    # repository ratio η) does not perturb the others (stream content,
    # missing-value pattern) — the parameter sweeps then vary exactly one
    # thing at a time, as in the paper's experiments.
    rng_sources = random.Random(seed)
    rng_repository = random.Random(seed + 7919)
    rng_missing = random.Random(seed + 104729)

    (source_a, source_b, ground_truth, record_topics, factory,
     entity_pool) = generate_clean_sources(profile, scale, rng_sources)

    repository_size = max(4, int(round(
        (len(source_a) + len(source_b)) * repository_ratio)))
    factory.rng = rng_repository
    repository = build_repository(factory, schema, repository_size,
                                  rng_repository, entity_pool=entity_pool)

    stream_a = inject_missing_values(source_a, schema, missing_rate,
                                     missing_attributes, rng_missing)
    stream_b = inject_missing_values(source_b, schema, missing_rate,
                                     missing_attributes, rng_missing)

    topics = list(TOPIC_CLUSTERS[profile.domain])
    keywords = frozenset(topics[:max(1, keyword_count)])
    topic_entities = {
        key for key, topic in record_topics.items() if topic in keywords
    }
    # Ground truth for *topic-aware* ER: only pairs where at least one side
    # belongs to a query topic should be reported (problem statement).
    topical_truth = {
        key for key in ground_truth
        if (f"{key[0][0]}/{key[0][1]}" in topic_entities
            or f"{key[1][0]}/{key[1][1]}" in topic_entities)
    }

    return Workload(
        profile=profile,
        schema=schema,
        stream_a=stream_a,
        stream_b=stream_b,
        repository=repository,
        ground_truth=topical_truth,
        keywords=keywords,
        topic_entities=topic_entities,
    )


def dataset_statistics(workload: Workload) -> Dict[str, object]:
    """Table 4-style statistics of one generated workload."""
    return {
        "dataset": workload.name,
        "source_a_tuples": len(workload.stream_a),
        "source_b_tuples": len(workload.stream_b),
        "repository_tuples": len(workload.repository),
        "topic_ground_truth_matches": len(workload.ground_truth),
        "keywords": sorted(workload.keywords),
        "attributes": list(workload.schema),
    }
