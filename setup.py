"""Setup script for the TER-iDS reproduction package.

A plain setup.py (rather than a PEP 517 pyproject build) is used so that
``pip install -e .`` works in fully offline environments where pip cannot
download an isolated build backend.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "TER-iDS: Online Topic-Aware Entity Resolution Over Incomplete Data "
        "Streams (SIGMOD 2021 reproduction)"
    ),
    long_description=open("README.md").read() if __import__("os").path.exists("README.md") else "",
    long_description_content_type="text/markdown",
    license="MIT",
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy>=1.24"],
    extras_require={"test": ["pytest", "pytest-benchmark", "hypothesis"]},
)
