"""Figure 5(a) — topic-aware ER accuracy (F-score) per dataset.

Paper shape: TER-iDS (CDD-based imputation) has the highest F-score
(94.62%-97.34%), DD+ER second, then er+ER, with con+ER worst.
"""

from bench_utils import (
    BENCH_SCALE,
    BENCH_SEED,
    BENCH_WINDOW,
    FULL_DATASETS,
    run_figure,
)

from repro.baselines.pipelines import METHOD_CON_ER, METHOD_DD_ER, METHOD_TER_IDS
from repro.experiments.figures import figure5a_fscore

METHODS = (METHOD_TER_IDS, METHOD_DD_ER, METHOD_CON_ER)


def test_figure5a_fscore(benchmark):
    rows = run_figure(
        benchmark, figure5a_fscore,
        "Figure 5(a): F-score (%) vs real data sets",
        datasets=FULL_DATASETS, methods=METHODS, scale=BENCH_SCALE,
        window_size=BENCH_WINDOW, seed=BENCH_SEED)
    assert len(rows) == len(FULL_DATASETS) * len(METHODS)
    by_dataset = {}
    for row in rows:
        by_dataset.setdefault(row["dataset"], {})[row["method"]] = row["f_score_pct"]
    # Shape check on the macro-average: TER-iDS's CDD-based imputation is at
    # least as accurate as the stream-only con+ER baseline.  (Per-dataset the
    # scaled-down topical ground truth is only a handful of pairs, so a
    # single pair of noise can flip one dataset; the paper-scale gap is
    # reproduced more sharply by the missing-rate sweep of Figure 13.)
    def macro_average(method):
        return sum(scores[method] for scores in by_dataset.values()) / len(by_dataset)

    assert macro_average(METHOD_TER_IDS) >= macro_average(METHOD_CON_ER) - 2.0
    assert macro_average(METHOD_TER_IDS) >= 80.0
