"""Micro-benchmarks of the individual TER-iDS components.

Not a paper figure: these isolate the cost of the hot inner operations
(tokenised Jaccard similarity, CDD imputation of one tuple, ER-grid insert +
candidate retrieval, aR-tree range search, pivot-bound computation) so that
regressions in any single substrate are visible independently of the
end-to-end sweeps.
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

import random  # noqa: E402

from bench_utils import BENCH_SCALE, BENCH_SEED  # noqa: E402

from repro.core.pruning import RecordSynopsis, similarity_upper_bound  # noqa: E402
from repro.core.similarity import record_similarity  # noqa: E402
from repro.core.tuples import ImputedRecord  # noqa: E402
from repro.experiments.harness import make_workload  # noqa: E402
from repro.imputation.cdd import discover_cdd_rules  # noqa: E402
from repro.imputation.imputer import CDDImputer  # noqa: E402
from repro.indexes.artree import ARTree, Rect  # noqa: E402
from repro.indexes.er_grid import ERGrid  # noqa: E402
from repro.indexes.pivots import select_pivots  # noqa: E402

WORKLOAD = make_workload("citations", missing_rate=0.4, scale=BENCH_SCALE,
                         seed=BENCH_SEED)
SCHEMA = WORKLOAD.schema
RECORDS = WORKLOAD.interleaved_records()
PIVOTS = select_pivots(WORKLOAD.repository)
RULES = discover_cdd_rules(WORKLOAD.repository)


def test_micro_record_similarity(benchmark):
    left, right = RECORDS[0], RECORDS[1]

    def compute():
        return record_similarity(left, right, SCHEMA)

    result = benchmark(compute)
    assert 0.0 <= result <= len(SCHEMA)


def test_micro_cdd_imputation_single_tuple(benchmark):
    incomplete = next(record for record in RECORDS
                      if not record.is_complete(SCHEMA))
    imputer = CDDImputer(repository=WORKLOAD.repository, rules=RULES)

    result = benchmark(lambda: imputer.impute(incomplete))
    assert result.rid == incomplete.rid


def test_micro_synopsis_and_similarity_bound(benchmark):
    imputed = [ImputedRecord.from_complete(record, SCHEMA)
               for record in RECORDS[:2] if record.is_complete(SCHEMA)]
    if len(imputed) < 2:
        imputed = [ImputedRecord.from_complete(WORKLOAD.repository.samples[0], SCHEMA),
                   ImputedRecord.from_complete(WORKLOAD.repository.samples[1], SCHEMA)]
    synopses = [RecordSynopsis.build(record, PIVOTS, WORKLOAD.keywords)
                for record in imputed]

    result = benchmark(lambda: similarity_upper_bound(synopses[0], synopses[1]))
    assert result >= 0.0


def test_micro_er_grid_insert_and_query(benchmark):
    complete = [record for record in RECORDS if record.is_complete(SCHEMA)][:40]
    synopses = [RecordSynopsis.build(ImputedRecord.from_complete(record, SCHEMA),
                                     PIVOTS, WORKLOAD.keywords)
                for record in complete]

    def build_and_query():
        grid = ERGrid(SCHEMA, cells_per_dim=5)
        for synopsis in synopses:
            grid.insert(synopsis)
        return len(grid.candidate_synopses(synopses[0], gamma=2.0,
                                           keywords=WORKLOAD.keywords))

    count = benchmark(build_and_query)
    assert count >= 0


def test_micro_artree_range_search(benchmark):
    rng = random.Random(BENCH_SEED)
    tree = ARTree(dimensions=3, max_entries=8)
    for index in range(500):
        tree.insert_point([rng.random() for _ in range(3)], payload=index)
    query = Rect.from_intervals([(0.2, 0.4), (0.1, 0.6), (0.3, 0.9)])

    results = benchmark(lambda: tree.range_search(query))
    assert isinstance(results, list)
