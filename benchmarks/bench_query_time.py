"""Query-time resolution: lookup latency vs eager ingestion throughput.

The on-demand read path (:class:`~repro.runtime.query.QueryResolver`) is
only useful if an interactive lookup is cheap next to the eager write path
it rides on.  This bench ingests a stream eagerly (publishing the eager
throughput as the baseline), then measures three lookup regimes over the
final live window:

* **cold** — every ``resolve`` misses the cache (it is cleared between
  queries): frontier expansion + batched cascade from scratch;
* **warm** — steady state: every cluster was resolved before and no window
  maintenance ran since, so every lookup is a region-validated cache hit;
* **mixed mid-stream** — lookups interleaved with ingestion (one query
  burst per batch), the regime the cache's region-targeted invalidation
  exists for.

The acceptance bar is a >= 5x p50 speedup of warm over cold lookups —
cached repeat queries must be near-free — plus bit-identity of every
cluster across the regimes (asserted, published as a column).

Run directly::

    PYTHONPATH=src python benchmarks/bench_query_time.py [--json] [--smoke]
"""

from __future__ import annotations

import sys
import time
from pathlib import Path
from typing import Dict, List

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from bench_utils import bench_argument_parser, write_bench_json  # noqa: E402
from repro.core.config import TERiDSConfig  # noqa: E402
from repro.core.engine import TERiDSEngine  # noqa: E402
from repro.datasets.synthetic import generate_dataset  # noqa: E402
from repro.experiments.harness import format_rows  # noqa: E402

BENCH_NAME = "query_time"
BENCH_DATASET = "citations"
BENCH_SEED = 7
CACHED_TARGET_SPEEDUP = 5.0


def _percentile(samples: List[float], fraction: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def _cluster_signature(cluster) -> tuple:
    return (cluster.members,
            tuple((pair.key(), pair.probability, pair.timestamp)
                  for pair in cluster.pairs))


def run_bench(smoke: bool, params_out: Dict) -> Dict[str, object]:
    scale = 0.2 if smoke else 1.0
    window = 20 if smoke else 60
    warm_rounds = 3 if smoke else 10
    workload = generate_dataset(BENCH_DATASET, missing_rate=0.3, scale=scale,
                                seed=BENCH_SEED)
    config = TERiDSConfig(schema=workload.schema, keywords=workload.keywords,
                          alpha=0.5, similarity_ratio=0.5,
                          window_size=window)
    records = list(workload.interleaved_records())
    params_out.update({"scale": scale, "window": window,
                       "records": len(records), "missing_rate": 0.3,
                       "warm_rounds": warm_rounds})

    engine = TERiDSEngine(repository=workload.repository, config=config)
    try:
        # -- eager baseline: the write path the lookups ride on ------------
        started = time.perf_counter()
        half = len(records) // 2
        engine.run(records[:half])
        # -- mixed regime: lookups interleaved with live ingestion ---------
        mixed_samples: List[float] = []
        step = max(1, len(records[half:]) // 8)
        for start in range(half, len(records), step):
            engine.process_batch(records[start:start + step])
            probes = engine.grid.synopsis_items()[-3:]
            for (rid, source), _ in probes:
                t0 = time.perf_counter()
                engine.resolve(rid, source)
                mixed_samples.append(time.perf_counter() - t0)
        eager_seconds = time.perf_counter() - started

        entities = [key for key, _ in engine.grid.synopsis_items()]

        # -- cold: every lookup recomputes from scratch ---------------------
        cold_samples: List[float] = []
        signatures = {}
        for rid, source in entities:
            engine.resolver.clear()
            t0 = time.perf_counter()
            cluster = engine.resolve(rid, source)
            cold_samples.append(time.perf_counter() - t0)
            signatures[(rid, source)] = _cluster_signature(cluster)

        # -- warm: steady-state repeat queries are cache hits ---------------
        engine.resolver.clear()
        for rid, source in entities:
            engine.resolve(rid, source)  # warm the cache
        warm_samples: List[float] = []
        identical = True
        for _ in range(warm_rounds):
            for rid, source in entities:
                t0 = time.perf_counter()
                cluster = engine.resolve(rid, source)
                warm_samples.append(time.perf_counter() - t0)
                if _cluster_signature(cluster) != signatures[(rid, source)]:
                    identical = False

        stats = engine.ctx.query.as_dict()
        cold_p50 = _percentile(cold_samples, 0.50)
        warm_p50 = _percentile(warm_samples, 0.50)
        return {
            "window_entities": len(entities),
            "eager_tuples_per_sec": round(
                len(records) / eager_seconds, 1) if eager_seconds else 0.0,
            "cold_p50_us": round(cold_p50 * 1e6, 1),
            "cold_p95_us": round(_percentile(cold_samples, 0.95) * 1e6, 1),
            "warm_p50_us": round(warm_p50 * 1e6, 1),
            "warm_p95_us": round(_percentile(warm_samples, 0.95) * 1e6, 1),
            "mixed_p50_us": round(
                _percentile(mixed_samples, 0.50) * 1e6, 1),
            "mixed_p95_us": round(
                _percentile(mixed_samples, 0.95) * 1e6, 1),
            "cached_speedup": round(cold_p50 / warm_p50, 2) if warm_p50
            else float("inf"),
            "clusters_identical": identical,
            "cache_hits": stats["cache_hits"],
            "cache_misses": stats["cache_misses"],
            "cache_invalidations": stats["cache_invalidations"],
        }
    finally:
        engine.close()


def main(argv=None) -> int:
    parser = bench_argument_parser(
        "Query-time resolve() latency vs eager ingestion throughput")
    args = parser.parse_args(argv)

    params: Dict[str, object] = {}
    row = run_bench(smoke=args.smoke, params_out=params)

    print("\n=== query-time resolution ===")
    print(format_rows([row]))
    if not row["clusters_identical"]:
        print("FAIL: cached clusters diverged from the cold resolves")
        return 1

    if args.json is not None:
        write_bench_json(BENCH_NAME, {
            "params": params,
            "row": row,
            "target_cached_speedup": CACHED_TARGET_SPEEDUP,
            "smoke": args.smoke,
        }, path=args.json or None)
    if args.smoke:
        # The smoke run gates correctness (identity above) and publishes
        # the columns; the latency bar is only meaningful at full scale,
        # but a cache hit should beat a recompute at any scale.
        ok = row["cached_speedup"] >= 1.0
    else:
        ok = row["cached_speedup"] >= CACHED_TARGET_SPEEDUP
    if not ok:
        print(f"FAIL: cached_speedup {row['cached_speedup']} below target")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
