"""Shared helpers for the per-figure benchmark scripts.

Every benchmark regenerates one table or figure of the paper at reduced
scale: it calls the corresponding runner from
:mod:`repro.experiments.figures`, prints the resulting rows (the same
dataset × method × parameter series the paper plots) and registers one
representative measurement with ``pytest-benchmark`` so that
``pytest benchmarks/ --benchmark-only`` also produces machine-readable
timings.
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Callable, Dict, List, Sequence

# Allow running the benches without an installed package (offline setups).
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.experiments.harness import format_rows  # noqa: E402

#: Scale / window used by every bench.  Chosen so the suite finishes in a few
#: minutes while remaining large enough for the paper's relative method
#: orderings (TER-iDS fastest among repository-based methods, DD+ER slowest)
#: to emerge from the noise.
BENCH_SCALE = 0.5
BENCH_WINDOW = 40
BENCH_SEED = 7

#: Dataset subsets: the quick set keeps sweeps cheap, the full set is used by
#: the per-dataset figures (4, 5, 6, 12) that the paper reports on all five.
QUICK_DATASETS = ("citations", "anime")
FULL_DATASETS = ("citations", "anime", "bikes", "ebooks", "songs")


def run_figure(benchmark, runner: Callable[..., List[Dict[str, object]]],
               title: str, **kwargs) -> List[Dict[str, object]]:
    """Execute a figure runner once under pytest-benchmark and print its rows."""
    rows = benchmark.pedantic(lambda: runner(**kwargs), rounds=1, iterations=1)
    print(f"\n=== {title} ===")
    print(format_rows(rows))
    return rows
