"""Shared helpers for the per-figure benchmark scripts.

Every benchmark regenerates one table or figure of the paper at reduced
scale: it calls the corresponding runner from
:mod:`repro.experiments.figures`, prints the resulting rows (the same
dataset × method × parameter series the paper plots) and registers one
representative measurement with ``pytest-benchmark`` so that
``pytest benchmarks/ --benchmark-only`` also produces machine-readable
timings.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

# Allow running the benches without an installed package (offline setups).
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.experiments.harness import format_rows  # noqa: E402

#: Scale / window used by every bench.  Chosen so the suite finishes in a few
#: minutes while remaining large enough for the paper's relative method
#: orderings (TER-iDS fastest among repository-based methods, DD+ER slowest)
#: to emerge from the noise.
BENCH_SCALE = 0.5
BENCH_WINDOW = 40
BENCH_SEED = 7

#: Dataset subsets: the quick set keeps sweeps cheap, the full set is used by
#: the per-dataset figures (4, 5, 6, 12) that the paper reports on all five.
QUICK_DATASETS = ("citations", "anime")
FULL_DATASETS = ("citations", "anime", "bikes", "ebooks", "songs")


def run_figure(benchmark, runner: Callable[..., List[Dict[str, object]]],
               title: str, **kwargs) -> List[Dict[str, object]]:
    """Execute a figure runner once under pytest-benchmark and print its rows."""
    rows = benchmark.pedantic(lambda: runner(**kwargs), rounds=1, iterations=1)
    print(f"\n=== {title} ===")
    print(format_rows(rows))
    return rows


# ---------------------------------------------------------------------------
# Machine-readable benchmark output (--json)
# ---------------------------------------------------------------------------
def bench_argument_parser(description: str) -> argparse.ArgumentParser:
    """The shared CLI of the standalone runtime benches.

    ``--json`` writes a ``BENCH_<name>.json`` next to the working directory
    (or to an explicit path) so that the perf trajectory can be tracked
    across PRs; ``--smoke`` shrinks the workload to a CI-sized smoke run
    that exercises the same code paths without the wall-clock cost.
    """
    parser = argparse.ArgumentParser(description=description)
    parser.add_argument(
        "--json", nargs="?", const="", default=None, metavar="PATH",
        help="write machine-readable results to BENCH_<name>.json "
             "(or to PATH when given)")
    parser.add_argument(
        "--smoke", action="store_true",
        help="run a tiny CI smoke workload instead of the full bench")
    return parser


def write_bench_json(name: str, payload: Dict[str, object],
                     path: Optional[str] = None) -> Path:
    """Write one bench's results as ``BENCH_<name>.json`` and return the path."""
    target = Path(path) if path else Path.cwd() / f"BENCH_{name}.json"
    document = {
        "bench": name,
        "python": platform.python_version(),
        "platform": platform.platform(),
        **payload,
    }
    target.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    print(f"wrote {target}")
    return target
