"""Ablation — contribution of the individual pruning strategies.

Runs the TER-iDS engine with all four strategies enabled and with each
family disabled, verifying that (a) the answer set never changes and (b) the
fully-enabled configuration refines the fewest candidate pairs exactly.
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from bench_utils import BENCH_SCALE, BENCH_SEED, BENCH_WINDOW  # noqa: E402

from repro.core.engine import TERiDSEngine  # noqa: E402
from repro.experiments.harness import default_config, make_workload  # noqa: E402


def _run_variant(workload, config):
    engine = TERiDSEngine(repository=workload.repository, config=config)
    report = engine.run(workload.interleaved_records())
    refined = (report.pruning_stats.refined_matches
               + report.pruning_stats.refined_non_matches)
    return {pair.key() for pair in report.matches}, refined, report.total_seconds


def test_ablation_pruning_strategies(benchmark):
    workload = make_workload("citations", scale=BENCH_SCALE, seed=BENCH_SEED)
    base_config = default_config(workload, window_size=BENCH_WINDOW)

    variants = {
        "all-pruning": base_config,
        "no-topic": base_config.replace(use_topic_pruning=False),
        "no-similarity": base_config.replace(use_similarity_pruning=False),
        "no-probability": base_config.replace(use_probability_pruning=False),
        "no-pruning": base_config.replace(
            use_topic_pruning=False, use_similarity_pruning=False,
            use_probability_pruning=False, use_instance_pruning=False),
    }

    def run_all():
        return {name: _run_variant(workload, config)
                for name, config in variants.items()}

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    print("\n=== Ablation: pruning strategies (citations) ===")
    for name, (keys, refined, seconds) in results.items():
        print(f"{name:>15}: matches={len(keys):3d} refined_pairs={refined:5d} "
              f"seconds={seconds:.3f}")

    reference_keys = results["all-pruning"][0]
    for name, (keys, _, _) in results.items():
        assert keys == reference_keys, f"{name} changed the answer set"
    # The fully-enabled configuration refines no more pairs than the
    # configuration with no pruning at all.
    assert results["all-pruning"][1] <= results["no-pruning"][1]
