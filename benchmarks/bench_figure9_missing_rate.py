"""Figure 9 — efficiency vs the missing rate ξ of incomplete tuples.

Paper shape: the cost of every method grows with ξ (more tuples to impute);
TER-iDS stays the cheapest across the whole sweep.
"""

from bench_utils import BENCH_SCALE, BENCH_SEED, BENCH_WINDOW, run_figure

from repro.baselines.pipelines import METHOD_CON_ER, METHOD_IJ_GER, METHOD_TER_IDS
from repro.experiments.figures import figure9_missing_rate

RATES = (0.1, 0.2, 0.3, 0.4, 0.5, 0.8)
METHODS = (METHOD_TER_IDS, METHOD_IJ_GER, METHOD_CON_ER)


def test_figure9_missing_rate(benchmark):
    rows = run_figure(
        benchmark, figure9_missing_rate,
        "Figure 9: wall clock time (sec/tuple) vs missing rate xi",
        dataset="citations", rates=RATES, methods=METHODS,
        scale=BENCH_SCALE, window_size=BENCH_WINDOW, seed=BENCH_SEED)
    assert len(rows) == len(RATES) * len(METHODS)
    ter_rows = sorted((row["missing_rate"], row["seconds_per_tuple"])
                      for row in rows if row["method"] == METHOD_TER_IDS)
    # Trend check: the highest missing rate should not be cheaper than the
    # lowest one for TER-iDS (more imputation work).
    assert ter_rows[-1][1] >= ter_rows[0][1] * 0.5
