"""Ablation — multi-CDD (Eq. 4) vs single-CDD (Eq. 3) imputation.

The paper adopts the all-CDDs strategy and leaves the single-rule strategy
as future work; this bench compares the two head to head on imputation
coverage (how many missing attributes receive candidates) and cost.
"""

import sys
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from bench_utils import BENCH_SCALE, BENCH_SEED  # noqa: E402

from repro.experiments.harness import make_workload  # noqa: E402
from repro.imputation.cdd import discover_cdd_rules  # noqa: E402
from repro.imputation.imputer import CDDImputer, SingleCDDImputer  # noqa: E402


def _coverage(imputer, records, schema):
    imputed_attributes = 0
    missing_attributes = 0
    start = time.perf_counter()
    for record in records:
        result = imputer.impute(record)
        missing_attributes += len(record.missing_attributes(schema))
        imputed_attributes += len(result.candidates)
    elapsed = time.perf_counter() - start
    return imputed_attributes, missing_attributes, elapsed


def test_ablation_multi_vs_single_cdd(benchmark):
    workload = make_workload("citations", missing_rate=0.5, scale=BENCH_SCALE,
                             seed=BENCH_SEED)
    rules = discover_cdd_rules(workload.repository)
    incomplete = [record for record in workload.interleaved_records()
                  if not record.is_complete(workload.schema)]

    def run_both():
        multi = CDDImputer(repository=workload.repository, rules=rules)
        single = SingleCDDImputer(repository=workload.repository, rules=rules)
        return {
            "multi_cdd": _coverage(multi, incomplete, workload.schema),
            "single_cdd": _coverage(single, incomplete, workload.schema),
        }

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)

    print("\n=== Ablation: multi-CDD (Eq. 4) vs single-CDD (Eq. 3) imputation ===")
    for name, (imputed, missing, seconds) in results.items():
        rate = imputed / missing if missing else 0.0
        print(f"{name:>11}: imputed {imputed}/{missing} attributes "
              f"({100 * rate:.1f}%), {seconds:.3f}s")

    multi_imputed = results["multi_cdd"][0]
    single_imputed = results["single_cdd"][0]
    # The multi-rule strategy can only impute at least as many attributes.
    assert multi_imputed >= single_imputed
