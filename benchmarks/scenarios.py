"""Load-regime scenarios for the adaptive-runtime benchmark.

Each scenario builds a *recorded event-time trace* over a synthetic
workload — a deterministic, seeded list of ``(record, event_time)`` rows
per ingest source — and replays it through
:class:`~repro.ingest.sources.ReplaySource` (its ``timestamps`` trace
input), so every configuration of the benchmark sees byte-identical input
under a realistic shifting-load shape:

* **burst** — arrivals clump into event-time bursts separated by quiet
  stretches (the watermark leaps a stride at a time instead of ticking);
* **skew** — two sources with a 9:1 hot/cold split: one source carries
  almost all the volume while the other trickles (and holds the watermark
  back between its arrivals);
* **out_of_order** — event times are displaced within a bounded disorder
  window, exercising the clock's reorder buffer on every batch;
* **late_data** — a fraction of arrivals carries event times far behind
  the watermark (bounded-lateness admission, late-policy accounting);
* **missing_rate** — the workload itself is regenerated at a much higher
  missing-attribute rate, shifting the per-tuple cost from matching into
  rule selection + imputation.

The scenarios are infrastructure, not a benchmark: ``bench_adaptive_runtime``
replays each one under static and adaptive runtime configurations and
compares them. Everything here is pure and deterministic (``random.Random``
seeded per scenario) so two runs — or two configurations within one run —
replay identical traces.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from bench_utils import BENCH_SEED

from repro.datasets.synthetic import generate_dataset
from repro.ingest.sources import ReplaySource


@dataclass(frozen=True)
class Scenario:
    """One load regime: workload knobs + event-time trace shape."""

    name: str
    description: str
    #: Missing-attribute rate of the generated workload.
    missing_rate: float = 0.3
    #: Number of ingest sources the trace is split across.
    sources: int = 1
    #: Fraction of records routed to the first (hot) source (multi-source
    #: scenarios only; the rest is spread evenly over the cold sources).
    hot_fraction: float = 0.0
    #: Records per event-time burst (0 = smooth arrival times).
    burst_size: int = 0
    #: Event-time gap between consecutive bursts.
    burst_gap: float = 0.0
    #: Max bounded displacement applied to event times (0 = in order).
    disorder: int = 0
    #: Fraction of records whose event time is pushed far behind.
    late_fraction: float = 0.0
    #: How far behind a late record's event time lands.
    late_by: float = 0.0
    #: Driver-side lateness bound needed to admit this trace losslessly.
    lateness: float = 0.0


SCENARIOS: Tuple[Scenario, ...] = (
    Scenario(
        name="burst",
        description="arrivals clump into event-time bursts of 24 separated "
                    "by 24-unit quiet gaps",
        burst_size=24, burst_gap=24.0),
    Scenario(
        name="skew",
        description="two sources, 9:1 hot/cold volume split",
        sources=2, hot_fraction=0.9),
    Scenario(
        name="out_of_order",
        description="event times displaced within a bounded disorder "
                    "window of 8",
        disorder=8, lateness=8.0),
    Scenario(
        name="late_data",
        description="10% of arrivals carry event times 16 units behind",
        late_fraction=0.1, late_by=16.0, lateness=16.0),
    Scenario(
        name="missing_rate",
        description="workload regenerated at 60% missing attributes "
                    "(imputation-bound tuples)",
        missing_rate=0.6),
)


def scenario_by_name(name: str) -> Scenario:
    for scenario in SCENARIOS:
        if scenario.name == name:
            return scenario
    raise KeyError(f"unknown scenario {name!r}; "
                   f"have {[s.name for s in SCENARIOS]}")


def build_workload(scenario: Scenario, dataset: str = "citations",
                   scale: float = 1.0, seed: int = BENCH_SEED):
    """The scenario's synthetic workload (missing rate is scenario-owned)."""
    return generate_dataset(dataset, missing_rate=scenario.missing_rate,
                            scale=scale, seed=seed)


def record_trace(scenario: Scenario, count: int,
                 seed: int = BENCH_SEED) -> List[float]:
    """The recorded event-time trace: one event time per arrival index.

    Deterministic in ``(scenario, count, seed)``.  Base event times are the
    arrival index; the scenario then reshapes them — bursts quantise them
    into clumps, disorder displaces them within a bounded window, late
    data drags a sampled fraction far behind.
    """
    # Seeded with a string: random.Random hashes it with its own stable
    # algorithm (unlike tuple hash, which PYTHONHASHSEED randomises).
    rng = random.Random(f"{seed}:{scenario.name}:{count}")
    times: List[float] = []
    for index in range(count):
        if scenario.burst_size > 0:
            # Whole bursts share one event-time clump; the watermark leaps
            # a gap at a time between them.
            burst = index // scenario.burst_size
            within = index % scenario.burst_size
            time = burst * (scenario.burst_size + scenario.burst_gap) \
                + within * 0.01
        else:
            time = float(index)
        times.append(time)
    if scenario.disorder > 0:
        # Bounded displacement: swap each event time with one up to
        # ``disorder`` positions ahead (classic bounded out-of-orderness —
        # no element ends up more than ``disorder`` from its slot).
        for index in range(count - 1, 0, -1):
            other = max(0, index - rng.randint(0, scenario.disorder))
            times[index], times[other] = times[other], times[index]
    if scenario.late_fraction > 0:
        for index in range(count):
            if index > 0 and rng.random() < scenario.late_fraction:
                times[index] = max(0.0, times[index] - scenario.late_by)
    return times


def split_by_source(scenario: Scenario, records: Sequence,
                    times: Sequence[float],
                    seed: int = BENCH_SEED) -> List[Tuple[List, List[float]]]:
    """Partition one (records, times) trace across the scenario's sources.

    The skew scenario routes ``hot_fraction`` of the volume to source 0
    (deterministically sampled); everything else round-robins over the
    cold sources.  Single-source scenarios return the trace unsplit.
    """
    if scenario.sources <= 1:
        return [(list(records), list(times))]
    rng = random.Random(f"{seed}:{scenario.name}:split")
    parts: List[Tuple[List, List[float]]] = [
        ([], []) for _ in range(scenario.sources)]
    cold = 0
    for record, time in zip(records, times):
        if rng.random() < scenario.hot_fraction:
            target = 0
        else:
            cold += 1
            target = 1 + (cold % (scenario.sources - 1))
        parts[target][0].append(record)
        parts[target][1].append(time)
    return parts


def build_sources(scenario: Scenario, records: Sequence,
                  seed: int = BENCH_SEED) -> List[ReplaySource]:
    """Replay sources carrying the scenario's recorded event-time trace."""
    records = list(records)
    times = record_trace(scenario, len(records), seed=seed)
    return [
        ReplaySource(part_records, name=f"{scenario.name}-{index}",
                     timestamps=part_times)
        for index, (part_records, part_times)
        in enumerate(split_by_source(scenario, records, times, seed=seed))
    ]


def driver_kwargs(scenario: Scenario) -> Dict[str, object]:
    """Driver knobs the trace needs to be admitted losslessly."""
    kwargs: Dict[str, object] = {}
    if scenario.lateness > 0:
        kwargs["lateness"] = scenario.lateness
    return kwargs
