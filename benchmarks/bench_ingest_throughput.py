"""Benchmark: async ingestion throughput and batch-formation latency.

Drives a synthetic multi-source load through ``IngestDriver`` (watermark
clock + adaptive batcher + micro-batch executor) at 1 and 4 sources and
reports, per configuration:

* sustained throughput (tuples/s over the whole run);
* p95 batch-formation latency (first enqueue → batch emit);
* arrival-queue depth statistics — the queue is bounded, and the reported
  first-half vs second-half mean depth shows there is no unbounded growth
  across the run (the acceptance signal for the adaptive batcher keeping
  up with the sources).

Run with::

    PYTHONPATH=src python benchmarks/bench_ingest_throughput.py [--smoke] [--json]
"""

from __future__ import annotations

from bench_utils import BENCH_SEED, bench_argument_parser, write_bench_json

from repro.core.config import TERiDSConfig
from repro.core.engine import TERiDSEngine
from repro.datasets.synthetic import generate_dataset
from repro.ingest import BatchPolicy, IngestDriver, SyntheticRateSource
from repro.runtime import MicroBatchExecutor

QUEUE_CAPACITY = 256
BATCH_POLICY = BatchPolicy(max_batch=64, max_delay=0.05)


def build_sources(records, n_sources):
    """Partition a record sequence into N unpaced synthetic sources.

    Strided slices keep every record unique across sources (no rid
    collisions in the windows/grid) while each source still interleaves
    both logical streams.
    """
    sources = []
    for index in range(n_sources):
        chunk = records[index::n_sources]
        sources.append(SyntheticRateSource(
            lambda i, chunk=chunk: chunk[i], count=len(chunk),
            name=f"synthetic-{index}", rate=None,
            seed=BENCH_SEED + index))
    return sources


def run_configuration(workload, n_sources, window_size, telemetry=False):
    config = TERiDSConfig(schema=workload.schema, keywords=workload.keywords,
                          window_size=window_size)
    engine = TERiDSEngine(repository=workload.repository, config=config,
                          executor=MicroBatchExecutor(batch_size=32))
    if telemetry:
        engine.enable_telemetry()
    records = workload.interleaved_records()
    driver = IngestDriver(engine, build_sources(records, n_sources),
                          policy=BATCH_POLICY,
                          queue_capacity=QUEUE_CAPACITY)
    report = driver.run()
    snapshot = engine.metrics_snapshot() if telemetry else None
    engine.close()
    stats = report.stats
    depths = list(stats.queue_depths) or [0]
    half = max(1, len(depths) // 2)
    first_half = sum(depths[:half]) / half
    second_half = sum(depths[half:]) / max(1, len(depths) - half)
    row = {
        "sources": n_sources,
        "tuples": report.tuples_processed,
        "batches": report.batches_processed,
        "matches": len(report.matches),
        "seconds": round(report.total_seconds, 4),
        "tuples_per_second": round(report.tuples_per_second, 1),
        "p95_batch_formation_ms": round(
            stats.p95_formation_latency() * 1e3, 3),
        "queue_capacity": QUEUE_CAPACITY,
        "max_queue_depth": stats.max_queue_depth,
        "mean_queue_depth_first_half": round(first_half, 2),
        "mean_queue_depth_second_half": round(second_half, 2),
        "backpressure_waits": stats.backpressure_waits,
        "triggers": dict(sorted(stats.triggers.items())),
    }
    return row, snapshot


def main() -> None:
    parser = bench_argument_parser(
        "Async ingestion throughput / batch-formation latency benchmark")
    parser.add_argument(
        "--metrics-snapshot", nargs="?", const="metrics_snapshot.json",
        default=None, metavar="PATH",
        help="enable the telemetry plane on the multi-source run and write "
             "its full metrics snapshot as JSON (default: "
             "metrics_snapshot.json)")
    args = parser.parse_args()
    scale = 0.4 if args.smoke else 1.0
    window = 30 if args.smoke else 40

    results = []
    snapshot = None
    for n_sources in (1, 4):
        workload = generate_dataset("citations", missing_rate=0.3,
                                    scale=scale, seed=BENCH_SEED)
        # The telemetry-enabled snapshot comes off the multi-source run —
        # it exercises the full ingest surface (watermark reordering,
        # per-source lateness, queue churn) the snapshot is meant to show.
        telemetry = args.metrics_snapshot is not None and n_sources == 4
        row, run_snapshot = run_configuration(workload, n_sources, window,
                                              telemetry=telemetry)
        if run_snapshot is not None:
            snapshot = run_snapshot
        results.append(row)
        print(f"{n_sources} source(s): {row['tuples']} tuples in "
              f"{row['seconds']}s -> {row['tuples_per_second']} tuples/s, "
              f"p95 formation {row['p95_batch_formation_ms']} ms, "
              f"queue depth max {row['max_queue_depth']}"
              f"/{row['queue_capacity']} "
              f"(halves {row['mean_queue_depth_first_half']} -> "
              f"{row['mean_queue_depth_second_half']})")

    # Bounded-queue criterion: the mean depth must not GROW across the run
    # (first-half vs second-half means, with a small-noise floor) — the
    # hard capacity bound holds by construction, so only the trend tells
    # whether the adaptive batcher actually keeps up with the sources.
    queue_bounded = all(
        row["mean_queue_depth_second_half"]
        <= max(row["mean_queue_depth_first_half"], 8.0)
        for row in results)
    print(f"queue bounded across the run: {queue_bounded}")

    if snapshot is not None:
        import json
        from pathlib import Path
        target = Path(args.metrics_snapshot)
        target.write_text(json.dumps(snapshot, indent=2, sort_keys=True)
                          + "\n")
        print(f"wrote {target}")

    if args.json is not None:
        write_bench_json("ingest_throughput", {
            "smoke": bool(args.smoke),
            "scale": scale,
            "window_size": window,
            "batch_policy": {"max_batch": BATCH_POLICY.max_batch,
                             "max_delay": BATCH_POLICY.max_delay},
            "results": results,
            "queue_bounded": queue_bounded,
        }, args.json or None)


if __name__ == "__main__":
    main()
