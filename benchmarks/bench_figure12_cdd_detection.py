"""Figure 12 — offline CDD detection (rule mining) cost per dataset.

Paper shape: datasets with larger repositories need more time to detect CDD
rules, and EBooks costs disproportionately more than similarly sized
datasets because of its large token sets.
"""

from bench_utils import (
    BENCH_SCALE,
    BENCH_SEED,
    FULL_DATASETS,
    run_figure,
)

from repro.experiments.figures import figure12_cdd_detection_cost


def test_figure12_cdd_detection_cost(benchmark):
    rows = run_figure(
        benchmark, figure12_cdd_detection_cost,
        "Figure 12: offline CDD detection cost per data set",
        datasets=FULL_DATASETS, scale=BENCH_SCALE, seed=BENCH_SEED)
    assert len(rows) == len(FULL_DATASETS)
    for row in rows:
        assert row["cdd_rules_detected"] > 0
        assert row["seconds"] > 0
    by_dataset = {row["dataset"]: row for row in rows}
    # Songs has the largest repository, so it should not be the cheapest.
    cheapest = min(rows, key=lambda row: row["seconds"])
    assert by_dataset["songs"]["repository_tuples"] >= cheapest["repository_tuples"]
