"""Figure 15 — accuracy (F-score) vs the number m of missing attributes.

Paper shape: accuracy decreases for every method as more attributes are
missing per incomplete tuple; TER-iDS keeps the highest accuracy
(89.26%-97.34% in the paper).
"""

from bench_utils import BENCH_SCALE, BENCH_SEED, BENCH_WINDOW, run_figure

from repro.baselines.pipelines import METHOD_CON_ER, METHOD_DD_ER, METHOD_TER_IDS
from repro.experiments.figures import figure15_fscore_m

MISSING_COUNTS = (1, 2, 3)
METHODS = (METHOD_TER_IDS, METHOD_DD_ER, METHOD_CON_ER)


def test_figure15_fscore_vs_missing_attributes(benchmark):
    rows = run_figure(
        benchmark, figure15_fscore_m,
        "Figure 15: F-score (%) vs number m of missing attributes",
        dataset="citations", missing_attribute_counts=MISSING_COUNTS,
        methods=METHODS, scale=BENCH_SCALE, window_size=BENCH_WINDOW,
        seed=BENCH_SEED)
    assert len(rows) == len(MISSING_COUNTS) * len(METHODS)
    ter = {row["missing_attributes"]: row["f_score_pct"]
           for row in rows if row["method"] == METHOD_TER_IDS}
    # Trend check: three missing attributes cannot beat one missing attribute.
    assert ter[3] <= ter[1] + 10.0
