"""Ablation — the index join (TER-iDS) vs sequential indexing vs no indexes.

This isolates the paper's central efficiency claim: performing imputation and
ER *at the same time* through the joined CDD-index / DR-index / ER-grid
traversal (TER-iDS) is cheaper than using the same indexes sequentially
(Ij+GER), which in turn is far cheaper than the index-free straightforward
method (CDD+ER).
"""

from bench_utils import BENCH_SCALE, BENCH_SEED, BENCH_WINDOW, run_figure

from repro.baselines.pipelines import METHOD_CDD_ER, METHOD_IJ_GER, METHOD_TER_IDS
from repro.experiments.figures import figure5b_wall_clock

METHODS = (METHOD_TER_IDS, METHOD_IJ_GER, METHOD_CDD_ER)


def test_ablation_index_join(benchmark):
    rows = run_figure(
        benchmark, figure5b_wall_clock,
        "Ablation: index join (TER-iDS) vs sequential indexes (Ij+GER) vs none (CDD+ER)",
        datasets=("citations",), methods=METHODS, scale=BENCH_SCALE,
        window_size=BENCH_WINDOW, seed=BENCH_SEED)
    times = {row["method"]: row["seconds_per_tuple"] for row in rows}
    # The index join must beat both the index-free straightforward method and
    # the sequential use of the same indexes (the paper's headline ordering).
    assert times[METHOD_TER_IDS] <= times[METHOD_CDD_ER]
    assert times[METHOD_TER_IDS] <= times[METHOD_IJ_GER]
