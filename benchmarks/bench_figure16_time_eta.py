"""Figure 16 — efficiency vs the repository size ratio η.

Paper shape: the cost of the repository-based methods grows with η (more
samples to check for imputation); con+ER is flat; TER-iDS stays cheapest.
"""

from bench_utils import BENCH_SCALE, BENCH_SEED, BENCH_WINDOW, run_figure

from repro.baselines.pipelines import METHOD_CON_ER, METHOD_IJ_GER, METHOD_TER_IDS
from repro.experiments.figures import figure16_time_eta

RATIOS = (0.1, 0.2, 0.3, 0.4, 0.5)
METHODS = (METHOD_TER_IDS, METHOD_IJ_GER, METHOD_CON_ER)


def test_figure16_time_vs_eta(benchmark):
    rows = run_figure(
        benchmark, figure16_time_eta,
        "Figure 16: wall clock time (sec/tuple) vs repository size ratio eta",
        dataset="citations", ratios=RATIOS, methods=METHODS,
        scale=BENCH_SCALE, window_size=BENCH_WINDOW, seed=BENCH_SEED)
    assert len(rows) == len(RATIOS) * len(METHODS)
    assert {row["repository_ratio"] for row in rows} == set(RATIOS)
