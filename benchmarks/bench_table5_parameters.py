"""Table 5 — the parameter settings used throughout the evaluation."""

from bench_utils import run_figure

from repro.experiments.figures import table5_parameter_settings


def test_table5_parameter_settings(benchmark):
    rows = run_figure(benchmark, table5_parameter_settings,
                      "Table 5: parameter settings (bench-scale grid)")
    assert len(rows) == 6
    parameters = {row["parameter"] for row in rows}
    assert any("alpha" in parameter for parameter in parameters)
    assert any("missing rate" in parameter for parameter in parameters)
