"""Figure 11 — offline cost of the cost-model-based pivot selection.

(a) vs the repository size ratio η: larger repositories take longer because
    the cost model evaluates the entropy of more candidate pivots over more
    samples.
(b) vs the maximal number of attribute pivots cntMax: the cost grows mildly
    with cntMax and flattens once the entropy threshold eMin is reached.
"""

from bench_utils import BENCH_SCALE, BENCH_SEED, QUICK_DATASETS, run_figure

from repro.experiments.figures import figure11_pivot_selection_cost

RATIOS = (0.1, 0.2, 0.3, 0.4, 0.5)
CNT_MAX_VALUES = (1, 2, 3, 4, 5)


def test_figure11_pivot_selection_cost(benchmark):
    rows = run_figure(
        benchmark, figure11_pivot_selection_cost,
        "Figure 11: pivot-selection cost vs eta (a) and cntMax (b)",
        datasets=QUICK_DATASETS, ratios=RATIOS, cnt_max_values=CNT_MAX_VALUES,
        scale=BENCH_SCALE, seed=BENCH_SEED)
    eta_rows = [row for row in rows if row["sweep"] == "eta"]
    cnt_rows = [row for row in rows if row["sweep"] == "cntMax"]
    assert len(eta_rows) == len(QUICK_DATASETS) * len(RATIOS)
    assert len(cnt_rows) == len(QUICK_DATASETS) * len(CNT_MAX_VALUES)
    # Trend check (Figure 11(a)): a larger repository costs at least as much
    # as the smallest one for each dataset.
    for dataset in QUICK_DATASETS:
        per_dataset = sorted((row["value"], row["seconds"])
                             for row in eta_rows if row["dataset"] == dataset)
        assert per_dataset[-1][1] >= per_dataset[0][1] * 0.5
