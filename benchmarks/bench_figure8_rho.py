"""Figure 8 — efficiency vs the similarity-threshold ratio ρ = γ/d.

Paper shape: larger ρ (stricter similarity threshold) yields fewer candidate
ER pairs and therefore a smoothly decreasing cost; TER-iDS remains cheapest.
"""

from bench_utils import BENCH_SCALE, BENCH_SEED, BENCH_WINDOW, run_figure

from repro.baselines.pipelines import METHOD_CON_ER, METHOD_IJ_GER, METHOD_TER_IDS
from repro.experiments.figures import figure8_rho

RHOS = (0.3, 0.4, 0.5, 0.6, 0.7)
METHODS = (METHOD_TER_IDS, METHOD_IJ_GER, METHOD_CON_ER)


def test_figure8_rho(benchmark):
    rows = run_figure(
        benchmark, figure8_rho,
        "Figure 8: wall clock time (sec/tuple) vs similarity ratio rho",
        dataset="citations", rhos=RHOS, methods=METHODS,
        scale=BENCH_SCALE, window_size=BENCH_WINDOW, seed=BENCH_SEED)
    assert len(rows) == len(RHOS) * len(METHODS)
    assert {row["rho"] for row in rows} == set(RHOS)
