"""Figure 10 — efficiency vs the sliding-window size w.

Paper shape: the cost of every method grows with w (more in-window tuples to
impute and compare); TER-iDS has the lowest cost at every window size.  The
paper sweeps w in 500..3000; the bench uses the proportionally scaled-down
window sizes of the bench grid.
"""

from bench_utils import BENCH_SCALE, BENCH_SEED, run_figure

from repro.baselines.pipelines import METHOD_CON_ER, METHOD_IJ_GER, METHOD_TER_IDS
from repro.experiments.figures import figure10_window

WINDOWS = (15, 25, 40, 60)
METHODS = (METHOD_TER_IDS, METHOD_IJ_GER, METHOD_CON_ER)


def test_figure10_window(benchmark):
    rows = run_figure(
        benchmark, figure10_window,
        "Figure 10: wall clock time (sec/tuple) vs sliding window size w",
        dataset="citations", windows=WINDOWS, methods=METHODS,
        scale=BENCH_SCALE, seed=BENCH_SEED)
    assert len(rows) == len(WINDOWS) * len(METHODS)
    assert {row["window_size"] for row in rows} == set(WINDOWS)
