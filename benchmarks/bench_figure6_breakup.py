"""Figure 6 — break-up of the TER-iDS per-tuple cost.

Paper shape: the online ER step dominates on most datasets (quadratic ER
nature); datasets with large repositories spend relatively more time on CDD
selection / imputation, and EBooks is the most expensive dataset overall
because of its long ``description`` attribute.
"""

from bench_utils import (
    BENCH_SCALE,
    BENCH_SEED,
    BENCH_WINDOW,
    FULL_DATASETS,
    run_figure,
)

from repro.experiments.figures import figure6_breakup_cost


def test_figure6_breakup_cost(benchmark):
    rows = run_figure(
        benchmark, figure6_breakup_cost,
        "Figure 6: break-up cost of TER-iDS (seconds per tuple, by stage)",
        datasets=FULL_DATASETS, scale=BENCH_SCALE, window_size=BENCH_WINDOW,
        seed=BENCH_SEED)
    assert len(rows) == len(FULL_DATASETS)
    for row in rows:
        assert row["cdd_selection_sec"] >= 0
        assert row["imputation_sec"] >= 0
        assert row["er_sec"] > 0
        total = (row["cdd_selection_sec"] + row["imputation_sec"]
                 + row["er_sec"])
        assert total <= row["total_sec_per_tuple"] * 1.2 + 1e-6
