"""Benchmark: self-tuning runtime controller vs static configurations.

Replays every load-regime scenario of :mod:`scenarios` (burst, skew,
out-of-order, late data, high missing rate — each a recorded event-time
trace through ``ReplaySource``) under three runtime configurations:

* **static-worst** — ``max_batch=1, max_workers=2, pool_mode="per-batch"``:
  the minimum-latency, fan-out-everything configuration.  Each knob is
  individually defensible (smallest batches for freshness, parallel
  refinement for heavy pair loads) — frozen together on a CPU-quota'd box
  they mean a process-pool spin-up per single-tuple batch, the exact
  mis-configuration class a self-tuning controller exists to escape;
* **static-best** — ``max_batch=64, max_workers=1``: the hand-tuned
  throughput configuration for this hardware (inline refinement, large
  batches);
* **adaptive** — starts from *static-worst's exact knobs* with an active
  :class:`~repro.runtime.controller.RuntimeController`: the clamp rule
  rightsizes workers to the schedulable CPUs, batch-policy retargeting
  grows ``max_batch`` toward the latency SLO, and the run must recover to
  near static-best throughput without ever changing an answer.

Per scenario it reports throughput, p95 batch latency and the controller's
decision trail, asserts the match sets of all three runs are identical,
and publishes ``BENCH_adaptive_runtime.json``.  The headline claims:

* adaptive ≥ 1.5× static-worst throughput at full scale;
* adaptive within 15% of static-best throughput at full scale.

Both targets are asserted only on the full (non-smoke) run; worker
*scale-up* beyond the clamp additionally keys on ``effective_cpus`` with a
visible note, mirroring the sharded-grid bench convention.

Run with::

    PYTHONPATH=src python benchmarks/bench_adaptive_runtime.py [--smoke] [--json]
"""

from __future__ import annotations

import os
from time import perf_counter
from typing import Dict, List, Optional

from bench_utils import BENCH_SEED, bench_argument_parser, write_bench_json
from scenarios import SCENARIOS, build_sources, build_workload, driver_kwargs

from repro.core.config import TERiDSConfig
from repro.core.engine import TERiDSEngine
from repro.ingest import BatchPolicy, IngestDriver
from repro.runtime import (
    MODE_ACTIVE,
    ControllerPolicy,
    MicroBatchExecutor,
    RuntimeController,
)

BENCH_NAME = "adaptive_runtime"
QUEUE_CAPACITY = 256

#: Full-scale headline targets (see module docstring).
TARGET_VS_WORST = 1.5
TARGET_WITHIN_BEST_PCT = 15.0

#: The three compared configurations:
#: ``(label, max_batch, max_workers, adaptive)`` — pool_mode is
#: ``"per-batch"`` throughout (``max_workers=1`` refines inline, so only
#: the oversubscribed configs ever pay a pool).  The adaptive run starts
#: from static-worst's exact knobs.
CONFIGURATIONS = (
    ("static-worst", 1, 2, False),
    ("static-best", 64, 1, False),
    ("adaptive", 1, 2, True),
)

#: Latency SLO the adaptive run steers toward.  Far above any single
#: small-batch latency of these workloads, so the controller's pressure is
#: upward (grow batches out of the mis-sized start) until a batch actually
#: costs a meaningful fraction of it.
SLO_P95_SECONDS = 0.5


def effective_cpus() -> int:
    """Schedulable CPUs of this process (cgroup/affinity aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux platforms
        return os.cpu_count() or 1


def controller_policy() -> ControllerPolicy:
    # Tight window/cooldown: every applied retarget clears the latency
    # window, so convergence from the mis-sized start to the workload's
    # preferred batch size costs ``window`` batches per doubling — a short
    # window lets the controller converge while the stream is still live.
    return ControllerPolicy(
        slo_p95_seconds=SLO_P95_SECONDS,
        window=2,
        cooldown_batches=1,
        min_workers=1,
        max_workers=max(2, min(4, effective_cpus())),
        clamp_workers_to_cpus=True,
        backlog_high=8,
        backlog_low=2,
        min_max_batch=1,
        max_max_batch=256,
    )


def canonical(matches) -> List:
    rows = [((pair.left_source, pair.left_rid),
             (pair.right_source, pair.right_rid),
             pair.probability, pair.timestamp) for pair in matches]
    rows.sort()
    return rows


def run_configuration(scenario, label: str, max_batch: int, workers: int,
                      adaptive: bool, scale: float,
                      window: int) -> Dict[str, object]:
    workload = build_workload(scenario, scale=scale, seed=BENCH_SEED)
    config = TERiDSConfig(schema=workload.schema, keywords=workload.keywords,
                          window_size=window)
    engine = TERiDSEngine(repository=workload.repository, config=config,
                          executor=MicroBatchExecutor(batch_size=32,
                                                      max_workers=workers,
                                                      pool_mode="per-batch"))
    engine.enable_telemetry()
    controller: Optional[RuntimeController] = None
    if adaptive:
        controller = RuntimeController(engine, mode=MODE_ACTIVE,
                                       policy=controller_policy())
    records = list(workload.interleaved_records())
    driver = IngestDriver(
        engine, build_sources(scenario, records, seed=BENCH_SEED),
        policy=BatchPolicy(max_batch=max_batch),
        queue_capacity=QUEUE_CAPACITY, controller=controller,
        # Off-loop batch processing: the sources keep filling the arrival
        # queue while a batch refines, so a mis-sized batch policy shows
        # up as a *measured* standing backlog — the signal the controller
        # keys its retargeting on (and what a live deployment looks like).
        process_in_executor=True,
        **driver_kwargs(scenario))
    start = perf_counter()
    report = driver.run()
    elapsed = perf_counter() - start
    telemetry = engine.ctx.telemetry
    p95_batch = telemetry.batch_seconds.quantile(0.95)
    row: Dict[str, object] = {
        "configuration": label,
        "tuples": report.tuples_processed,
        "batches": report.batches_processed,
        "seconds": round(elapsed, 4),
        "tuples_per_second": round(report.tuples_processed
                                   / max(elapsed, 1e-9), 1),
        "p95_batch_seconds": round(p95_batch, 5),
        "admitted_late": report.stats.admitted_late,
        "reordered": report.stats.reordered,
    }
    if controller is not None:
        row["controller"] = {
            "evaluations": controller.state["evaluations"],
            "decisions": dict(controller.state["decisions"]),
            "final_max_batch": controller.batcher.policy.max_batch,
            "final_workers": engine.executor.max_workers,
        }
    matches = canonical(engine.current_matches())
    engine.close()
    return row, matches


def run_scenario(scenario, scale: float, window: int,
                 repeats: int = 1) -> Dict[str, object]:
    reference_matches = None
    matches_identical = True
    best_rows: Dict[str, Dict[str, object]] = {}
    # Best-of-``repeats`` wall time per configuration: the comparison is
    # between *configurations*, not between scheduler noise on a shared
    # box.  Repeats are interleaved round-robin so slow phases of the box
    # hit every configuration alike instead of one configuration's whole
    # block.  Match identity is asserted on every run.
    for _ in range(repeats):
        for label, max_batch, workers, adaptive in CONFIGURATIONS:
            row, matches = run_configuration(scenario, label, max_batch,
                                             workers, adaptive, scale, window)
            if reference_matches is None:
                reference_matches = matches
            elif matches != reference_matches:
                matches_identical = False
            best = best_rows.get(label)
            if (best is None or row["tuples_per_second"]
                    > best["tuples_per_second"]):
                best_rows[label] = row
    rows = [best_rows[label] for label, _, _, _ in CONFIGURATIONS]
    by_label = {row["configuration"]: row for row in rows}
    worst = by_label["static-worst"]["tuples_per_second"]
    best = by_label["static-best"]["tuples_per_second"]
    adaptive_tps = by_label["adaptive"]["tuples_per_second"]
    return {
        "scenario": scenario.name,
        "description": scenario.description,
        "rows": rows,
        "matches_identical": matches_identical,
        "adaptive_vs_worst": round(adaptive_tps / max(worst, 1e-9), 3),
        "adaptive_vs_best_pct": round(
            (best - adaptive_tps) / max(best, 1e-9) * 100.0, 2),
    }


def main() -> int:
    parser = bench_argument_parser(
        "Adaptive runtime controller vs static configurations, per "
        "load-regime scenario")
    args = parser.parse_args()
    # Full scale runs a long enough stream that the controller's one-off
    # convergence cost (the escape from static-worst's knobs) amortises
    # against steady state — the regime the within-15%-of-best target is
    # a claim about.  Smoke only checks the machinery end-to-end.
    scale = 0.3 if args.smoke else 3.0
    window = 20 if args.smoke else 40
    repeats = 1 if args.smoke else 3

    cpus = effective_cpus()
    worker_note = None
    if cpus < 2:
        worker_note = (
            f"worker scale-up unavailable: {cpus} effective cpu(s) "
            f"(sched_getaffinity) — on this hardware the controller's "
            f"worker path is the rightsizing clamp (2 -> {cpus}); the "
            f"batch-policy adaptation targets below do not depend on "
            f"parallelism")
        print(f"NOTE: {worker_note}")

    results = []
    for scenario in SCENARIOS:
        summary = run_scenario(scenario, scale, window, repeats=repeats)
        results.append(summary)
        adaptive_row = summary["rows"][2]
        print(f"[{scenario.name}] worst={summary['rows'][0]['tuples_per_second']} "
              f"best={summary['rows'][1]['tuples_per_second']} "
              f"adaptive={adaptive_row['tuples_per_second']} tuples/s "
              f"(vs worst {summary['adaptive_vs_worst']}x, "
              f"behind best {summary['adaptive_vs_best_pct']}%) "
              f"matches_identical={summary['matches_identical']} "
              f"decisions={adaptive_row['controller']['decisions']}")

    failed = []
    for summary in results:
        if not summary["matches_identical"]:
            failed.append(f"{summary['scenario']}: adaptation changed the "
                          f"match set")
    if not args.smoke:
        for summary in results:
            if summary["adaptive_vs_worst"] < TARGET_VS_WORST:
                failed.append(
                    f"{summary['scenario']}: adaptive only "
                    f"{summary['adaptive_vs_worst']}x static-worst "
                    f"(target {TARGET_VS_WORST}x)")
            if summary["adaptive_vs_best_pct"] > TARGET_WITHIN_BEST_PCT:
                failed.append(
                    f"{summary['scenario']}: adaptive trails static-best "
                    f"by {summary['adaptive_vs_best_pct']}% "
                    f"(target <= {TARGET_WITHIN_BEST_PCT}%)")

    if args.json is not None:
        write_bench_json(BENCH_NAME, {
            "scenarios": results,
            "target_vs_worst": TARGET_VS_WORST,
            "target_within_best_pct": TARGET_WITHIN_BEST_PCT,
            "slo_p95_seconds": SLO_P95_SECONDS,
            "scale": scale,
            "window": window,
            "repeats": repeats,
            "cpus": os.cpu_count(),
            "effective_cpus": cpus,
            "worker_scaling_note": worker_note,
            "smoke": args.smoke,
        }, path=args.json or None)

    if failed:
        for line in failed:
            print(f"FAIL: {line}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
