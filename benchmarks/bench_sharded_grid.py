"""Sharded columnar ER-grid: vectorized cell scan + worker-side ER phase.

Two sections:

* **cell scan** — the cell-level aggregate test of ``candidate_synopses``
  (min converted-space L1 distance of the query rectangle to every cell)
  evaluated per cell in Python (the seed walk) vs one
  :func:`~repro.core.pruning.batch_cell_scan` kernel call over the
  columnar :class:`~repro.indexes.er_grid.CellStore`.  Masks are asserted
  identical; the acceptance bar is >= 3x at >= 100 cells.
* **ER phase end-to-end** — lookup + pruning + refinement over a
  refinement-heavy stream through (a) the ``SerialExecutor`` (the serial
  per-tuple lookup baseline), (b) the in-process vectorized micro-batch
  executor, (c) ``shard_lookup`` with a broadcast
  :class:`~repro.runtime.workers.ShardedERPool` (full replicas, per-batch
  deltas to every worker), and (d) the shared-memory plane
  (:class:`~repro.runtime.workers.ShmShardedERPool`: workers map the
  columnar arenas; only the op journal and routed record deltas are
  pickled) at 1/2/4 workers plus a routing-off row as its own shipping
  baseline.  Match sets are asserted identical; the acceptance bar is
  >= 2x ER-phase speedup for the 4-worker sharded run vs the serial
  lookup — gated on *effective* CPUs (``len(os.sched_getaffinity(0))``):
  on a container with fewer schedulable cores than workers the speedup
  targets are skipped with a visible note in the JSON, because there is
  no hardware to parallelise into (the byte columns remain meaningful and
  are still published).

Run directly::

    PYTHONPATH=src python benchmarks/bench_sharded_grid.py [--json] [--smoke]
"""

from __future__ import annotations

import os
import sys
from pathlib import Path
from typing import Dict, List, Optional

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from bench_utils import bench_argument_parser, write_bench_json  # noqa: E402
from repro.core.config import TERiDSConfig  # noqa: E402
from repro.core.engine import TERiDSEngine  # noqa: E402
from repro.core.pruning import HAS_NUMPY  # noqa: E402
from repro.datasets.synthetic import generate_dataset  # noqa: E402
from repro.experiments.harness import format_rows  # noqa: E402
from repro.metrics.timing import STAGE_ER, now  # noqa: E402
from repro.runtime import MicroBatchExecutor, SerialExecutor  # noqa: E402

BENCH_NAME = "sharded_grid"
BENCH_DATASET = "citations"
BENCH_SEED = 7
SCAN_TARGET_SPEEDUP = 3.0
SCAN_TARGET_CELLS = 100
ER_TARGET_SPEEDUP = 2.0
ER_TARGET_WORKERS = 4


def effective_cpus() -> int:
    """Schedulable CPUs of this process (cgroup/affinity aware).

    ``os.cpu_count()`` reports the host's cores; a containerised bench can
    be pinned to far fewer.  Multi-worker speedup targets are keyed on
    this number — with fewer effective CPUs than workers there is no
    hardware to parallelise into and the targets are skipped (visibly).
    """
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux platforms
        return os.cpu_count() or 1


def _build_engine(missing_rate, scale, window, cells_per_dim, alpha,
                  similarity_ratio, executor=None):
    workload = generate_dataset(BENCH_DATASET, missing_rate=missing_rate,
                                scale=scale, seed=BENCH_SEED)
    config = TERiDSConfig(schema=workload.schema, keywords=workload.keywords,
                          alpha=alpha, similarity_ratio=similarity_ratio,
                          window_size=window, grid_cells_per_dim=cells_per_dim)
    engine = TERiDSEngine(repository=workload.repository, config=config,
                          executor=executor)
    return engine, workload, config


# ---------------------------------------------------------------------------
# Section 1: vectorized cell scan vs the scalar cell walk
# ---------------------------------------------------------------------------
def run_scan_bench(smoke: bool = False,
                   params_out: Optional[Dict[str, object]] = None,
                   ) -> Dict[str, object]:
    tuples, window, cells_per_dim = (120, 60, 8) if smoke else (600, 300, 24)
    queries, repeats = (10, 2) if smoke else (50, 5)
    if params_out is not None:
        params_out.update({"tuples": tuples, "window": window,
                           "cells_per_dim": cells_per_dim,
                           "queries": queries, "repeats": repeats})
    engine, workload, config = _build_engine(
        missing_rate=0.3, scale=0.5 if smoke else 3.0, window=window,
        cells_per_dim=cells_per_dim, alpha=0.5, similarity_ratio=0.5)
    engine.run(workload.interleaved_records()[:tuples])
    grid = engine.grid
    store = grid.enable_cell_store()
    query_synopses = grid.synopses()[:queries]
    margin = len(config.schema) - config.gamma

    def scalar_masks() -> List[List[bool]]:
        masks = []
        for query in query_synopses:
            rectangle = query.coordinate_rectangle()
            masks.append([
                grid._cell_min_distance(cell, rectangle) < margin
                for cell in grid._cells.values()
            ])
        return masks

    def vectorized_masks() -> List[List[bool]]:
        masks = []
        for query in query_synopses:
            alive = store.scan(query.coordinate_rectangle(), margin,
                               require_keyword=False)
            masks.append([bool(alive[store.row_of(coordinates)])
                          for coordinates in grid._cells])
        return masks

    identical = scalar_masks() == vectorized_masks()  # also warms both paths
    start = now()
    for _ in range(repeats):
        scalar_masks()
    scalar_seconds = now() - start
    start = now()
    for _ in range(repeats):
        for query in query_synopses:
            store.scan(query.coordinate_rectangle(), margin,
                       require_keyword=False)
    vector_seconds = now() - start

    scans = queries * repeats
    return {
        "cells": grid.cell_count,
        "scans_timed": scans,
        "scalar_scans_per_sec": round(scans / scalar_seconds, 1),
        "vectorized_scans_per_sec": round(scans / vector_seconds, 1),
        "speedup": round(scalar_seconds / vector_seconds, 2),
        "masks_identical": identical,
    }


# ---------------------------------------------------------------------------
# Section 2: end-to-end ER phase (lookup + prune + refine)
# ---------------------------------------------------------------------------
def _time_er_phase(executor, records, **workload_knobs):
    engine, workload, _ = _build_engine(executor=executor, **workload_knobs)
    try:
        start = now()
        report = engine.run(workload.interleaved_records()[:records])
        wall = now() - start
        matches = sorted(
            (pair.left_rid, pair.left_source, pair.right_rid,
             pair.right_source, pair.probability)
            for pair in report.matches)
        transport = engine.ctx.transport
        return {
            "er_seconds": engine.ctx.timer.totals.get(STAGE_ER, 0.0),
            "wall_seconds": wall,
            "matches": matches,
            "bytes_shipped": transport.bytes_shipped,
            "deltas_routed": transport.deltas_routed,
            "backfills": transport.backfills,
            "shm_bytes_mapped": transport.shm_bytes_mapped,
        }
    finally:
        engine.close()


def run_er_bench(smoke: bool = False,
                 params_out: Optional[Dict[str, object]] = None,
                 ) -> List[Dict[str, object]]:
    records = 80 if smoke else 500
    knobs = dict(missing_rate=0.45, scale=0.5 if smoke else 3.0,
                 window=40 if smoke else 250, cells_per_dim=12, alpha=0.25,
                 similarity_ratio=0.5)
    worker_counts = (2,) if smoke else (2, ER_TARGET_WORKERS)
    batch = 32 if smoke else 64
    if params_out is not None:
        params_out.update({"records": records, "batch_size": batch, **knobs})

    shm_worker_counts = (1, 2) if smoke else (1, 2, ER_TARGET_WORKERS)
    configurations = [
        ("serial-lookup (SerialExecutor)", 1, lambda: SerialExecutor()),
        ("in-process vectorized", 1,
         lambda: MicroBatchExecutor(batch_size=batch)),
    ]
    for workers in worker_counts:
        configurations.append((
            f"sharded broadcast {workers}w", workers,
            lambda workers=workers: MicroBatchExecutor(
                batch_size=batch, max_workers=workers,
                pool_mode="persistent", shard_lookup=True),
        ))
    for workers in shm_worker_counts:
        configurations.append((
            f"shm-plane routed {workers}w", workers,
            lambda workers=workers: MicroBatchExecutor(
                batch_size=batch, max_workers=workers,
                shard_lookup=True, shm_plane=True),
        ))
    broadcast_workers = max(shm_worker_counts)
    configurations.append((
        f"shm-plane broadcast {broadcast_workers}w", broadcast_workers,
        lambda: MicroBatchExecutor(
            batch_size=batch, max_workers=broadcast_workers,
            shard_lookup=True, shm_plane=True, delta_routing=False),
    ))

    rows: List[Dict[str, object]] = []
    reference_matches = None
    baseline_er = None
    for label, workers, factory in configurations:
        timing = _time_er_phase(factory(), records, **knobs)
        if reference_matches is None:
            reference_matches = timing["matches"]
            baseline_er = timing["er_seconds"]
        rows.append({
            "configuration": label,
            "workers": workers,
            "er_seconds": round(timing["er_seconds"], 3),
            "wall_seconds": round(timing["wall_seconds"], 3),
            "er_speedup_vs_serial": round(
                baseline_er / timing["er_seconds"], 2)
            if timing["er_seconds"] else float("inf"),
            "bytes_shipped": timing["bytes_shipped"],
            "bytes_per_worker": timing["bytes_shipped"] // workers,
            "deltas_routed": timing["deltas_routed"],
            "backfills": timing["backfills"],
            "shm_bytes_mapped": timing["shm_bytes_mapped"],
            "matches_identical": timing["matches"] == reference_matches,
        })
    return rows


def main(argv=None) -> int:
    parser = bench_argument_parser(
        "Sharded columnar ER-grid: vectorized cell scan + worker-side ER "
        "phase")
    args = parser.parse_args(argv)
    if not HAS_NUMPY:
        print("numpy unavailable: the columnar grid paths cannot run")
        return 1

    scan_params: Dict[str, object] = {}
    scan_row = run_scan_bench(smoke=args.smoke, params_out=scan_params)
    print(f"=== vectorized cell scan vs scalar walk "
          f"({scan_row['cells']} cells) ===")
    print(format_rows([scan_row]))

    er_params: Dict[str, object] = {}
    er_rows = run_er_bench(smoke=args.smoke, params_out=er_params)
    print(f"\n=== end-to-end ER phase (lookup + prune + refine, "
          f"{er_params['records']} tuples) ===")
    print(format_rows(er_rows))

    if not scan_row["masks_identical"]:
        print("FAIL: the vectorized cell scan changed a cell mask")
        return 1
    if not all(row["matches_identical"] for row in er_rows):
        print("FAIL: a sharded configuration changed the match set")
        return 1

    cpus = effective_cpus()
    speedup_note = None
    if cpus < ER_TARGET_WORKERS:
        speedup_note = (
            f"multi-worker speedup targets skipped: {cpus} effective cpu(s) "
            f"< {ER_TARGET_WORKERS} workers (sched_getaffinity) — no "
            f"hardware to parallelise into; byte columns remain binding")
    sharded_speedup = max(
        (row["er_speedup_vs_serial"] for row in er_rows
         if row["workers"] == ER_TARGET_WORKERS), default=0.0)
    print(f"\ncell-scan speedup at {scan_row['cells']} cells: "
          f"{scan_row['speedup']:.2f}x (target: >= {SCAN_TARGET_SPEEDUP}x "
          f"at >= {SCAN_TARGET_CELLS} cells)")
    print(f"ER-phase speedup, best {ER_TARGET_WORKERS}w vs serial "
          f"lookup: {sharded_speedup:.2f}x (target: >= "
          f"{ER_TARGET_SPEEDUP}x) on {cpus} effective cpu(s) / "
          f"{os.cpu_count()} host cpu(s)")
    if speedup_note is not None:
        print(f"NOTE: {speedup_note}")

    # The plane must leave nothing behind in /dev/shm, smoke or full.
    from repro.runtime import shm_plane
    shm_plane._sweep_stale()
    leaked = shm_plane.active_segment_names() + shm_plane.scan_dev_shm()
    if leaked:
        print(f"FAIL: leaked shared-memory segments: {sorted(set(leaked))}")
        return 1

    if args.json is not None:
        write_bench_json(BENCH_NAME, {
            "cell_scan": {"row": scan_row, "params": scan_params,
                          "target_speedup": SCAN_TARGET_SPEEDUP,
                          "target_cells": SCAN_TARGET_CELLS},
            "er_phase": {"rows": er_rows, "params": er_params,
                         "target_speedup": ER_TARGET_SPEEDUP,
                         "target_workers": ER_TARGET_WORKERS,
                         "speedup_targets_skipped": speedup_note},
            "cpus": os.cpu_count(),
            "effective_cpus": cpus,
            "shm_segments_leaked": 0,
            "smoke": args.smoke,
        }, path=args.json or None)
    if args.smoke:
        return 0
    ok = (scan_row["speedup"] >= SCAN_TARGET_SPEEDUP
          and scan_row["cells"] >= SCAN_TARGET_CELLS
          and (cpus < ER_TARGET_WORKERS
               or sharded_speedup >= ER_TARGET_SPEEDUP))
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
