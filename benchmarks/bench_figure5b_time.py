"""Figure 5(b) — per-tuple wall-clock time of each method per dataset.

Paper shape: TER-iDS is fastest, Ij+GER second, con+ER third; the index-free
CDD+ER / DD+ER / er+ER baselines are orders of magnitude slower.
"""

from bench_utils import BENCH_SCALE, BENCH_SEED, BENCH_WINDOW, run_figure

from repro.baselines.pipelines import (
    METHOD_CDD_ER,
    METHOD_CON_ER,
    METHOD_DD_ER,
    METHOD_IJ_GER,
    METHOD_TER_IDS,
)
from repro.experiments.figures import figure5b_wall_clock

DATASETS = ("citations", "anime", "bikes")
METHODS = (METHOD_TER_IDS, METHOD_IJ_GER, METHOD_CDD_ER, METHOD_DD_ER,
           METHOD_CON_ER)


def test_figure5b_wall_clock(benchmark):
    rows = run_figure(
        benchmark, figure5b_wall_clock,
        "Figure 5(b): wall clock time (sec/tuple) vs real data sets",
        datasets=DATASETS, methods=METHODS, scale=BENCH_SCALE,
        window_size=BENCH_WINDOW, seed=BENCH_SEED)
    assert len(rows) == len(DATASETS) * len(METHODS)
    by_dataset = {}
    for row in rows:
        by_dataset.setdefault(row["dataset"], {})[row["method"]] = (
            row["seconds_per_tuple"])
    # Shape check: the index-joined TER-iDS beats the index-free DD+ER
    # baseline (the paper's slowest method) on every dataset.
    for dataset, times in by_dataset.items():
        assert times[METHOD_TER_IDS] <= times[METHOD_DD_ER], dataset
