"""Figure 14 — accuracy (F-score) vs the repository size ratio η.

Paper shape: accuracy of the repository-based methods (TER-iDS, DD+ER,
er+ER) improves with larger repositories; con+ER is flat because it never
touches the repository.
"""

from bench_utils import BENCH_SCALE, BENCH_SEED, BENCH_WINDOW, run_figure

from repro.baselines.pipelines import METHOD_CON_ER, METHOD_DD_ER, METHOD_TER_IDS
from repro.experiments.figures import figure14_fscore_eta

RATIOS = (0.1, 0.3, 0.5)
METHODS = (METHOD_TER_IDS, METHOD_DD_ER, METHOD_CON_ER)


def test_figure14_fscore_vs_eta(benchmark):
    rows = run_figure(
        benchmark, figure14_fscore_eta,
        "Figure 14: F-score (%) vs repository size ratio eta",
        dataset="citations", ratios=RATIOS, methods=METHODS,
        scale=BENCH_SCALE, window_size=BENCH_WINDOW, seed=BENCH_SEED)
    assert len(rows) == len(RATIOS) * len(METHODS)
    con_scores = {row["f_score_pct"] for row in rows
                  if row["method"] == METHOD_CON_ER}
    # con+ER ignores the repository, so its score is unaffected by eta.
    assert len(con_scores) == 1
