"""Incremental vs full-re-mine rule maintenance (the Section 5.5 bench).

Builds a repository of >= 1k complete samples, holds out a tail of "future"
samples, and feeds them back in fixed-size update batches through two
engines: one in ``full`` maintenance mode (every update triggers an exact
re-mine via ``add_repository_samples(..., remine_rules=True)``) and one in
``incremental`` mode (sketch-based maintenance).  The full path pays
O(repository) pair work per update; the incremental path is bounded by the
``max_update_pairs`` budget — O(batch) — so the per-update cost gap widens
with the repository.  The acceptance bar is >= 5x mean speedup.

Run directly::

    PYTHONPATH=src python benchmarks/bench_incremental_rules.py

or under pytest-benchmark::

    python -m pytest benchmarks/bench_incremental_rules.py --benchmark-only
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Dict, List

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.core.config import TERiDSConfig  # noqa: E402
from repro.core.engine import TERiDSEngine  # noqa: E402
from repro.datasets.synthetic import generate_dataset  # noqa: E402
from repro.experiments.harness import format_rows  # noqa: E402
from repro.imputation.cdd import (  # noqa: E402
    MAINTENANCE_FULL,
    MAINTENANCE_INCREMENTAL,
    CDDDiscoveryConfig,
)
from repro.imputation.repository import DataRepository  # noqa: E402
from repro.metrics.timing import now  # noqa: E402

BENCH_DATASET = "songs"
BENCH_SCALE = 3.0  # repository >= 1k samples at repository_ratio=1.0
BENCH_SEED = 7
UPDATE_BATCH = 16
UPDATE_ROUNDS = 3
SPEEDUP_TARGET = 5.0


def _build_setup():
    workload = generate_dataset(BENCH_DATASET, missing_rate=0.3,
                                scale=BENCH_SCALE, seed=BENCH_SEED,
                                repository_ratio=1.0)
    samples = list(workload.repository.samples)
    holdout_size = UPDATE_BATCH * UPDATE_ROUNDS
    base = samples[:-holdout_size]
    holdout = samples[-holdout_size:]
    config = TERiDSConfig(schema=workload.schema, keywords=workload.keywords,
                          window_size=50)
    return workload, config, base, holdout


def _engine(workload, config, base, mode) -> TERiDSEngine:
    return TERiDSEngine(
        repository=DataRepository(schema=workload.schema, samples=list(base)),
        config=config,
        discovery_config=CDDDiscoveryConfig(maintenance_mode=mode),
    )


def _time_updates(engine: TERiDSEngine, holdout, remine: bool) -> List[float]:
    timings = []
    for round_index in range(UPDATE_ROUNDS):
        batch = holdout[round_index * UPDATE_BATCH:
                        (round_index + 1) * UPDATE_BATCH]
        start = now()
        engine.add_repository_samples(batch, remine_rules=remine)
        timings.append(now() - start)
    return timings


def run_bench() -> List[Dict[str, object]]:
    """Time ``add_repository_samples`` in both maintenance modes."""
    workload, config, base, holdout = _build_setup()
    full_engine = _engine(workload, config, base, MAINTENANCE_FULL)
    incremental_engine = _engine(workload, config, base,
                                 MAINTENANCE_INCREMENTAL)

    full_times = _time_updates(full_engine, holdout, remine=True)
    incremental_times = _time_updates(incremental_engine, holdout,
                                      remine=False)

    rows: List[Dict[str, object]] = []
    for index, (full_s, inc_s) in enumerate(zip(full_times,
                                                incremental_times)):
        rows.append({
            "update": index + 1,
            "repository_size": len(base) + (index + 1) * UPDATE_BATCH,
            "batch": UPDATE_BATCH,
            "full_remine_sec": round(full_s, 4),
            "incremental_sec": round(inc_s, 4),
            "speedup": round(full_s / inc_s, 2) if inc_s > 0 else float("inf"),
        })
    mean_full = sum(full_times) / len(full_times)
    mean_incremental = sum(incremental_times) / len(incremental_times)
    rows.append({
        "update": "mean",
        "repository_size": len(full_engine.repository),
        "batch": UPDATE_BATCH,
        "full_remine_sec": round(mean_full, 4),
        "incremental_sec": round(mean_incremental, 4),
        "speedup": round(mean_full / mean_incremental, 2),
        "rules_full": len(full_engine.rules),
        "rules_incremental": len(incremental_engine.rules),
        "drift": round(incremental_engine.rule_maintainer.drift, 4),
    })
    return rows


def test_incremental_rule_maintenance(benchmark):
    """pytest-benchmark entry point (one sweep, speedup bar asserted)."""
    rows = benchmark.pedantic(run_bench, rounds=1, iterations=1)
    print("\n=== rule maintenance: full re-mine vs incremental ===")
    print(format_rows(rows))
    assert rows[-1]["repository_size"] >= 1000
    assert rows[-1]["speedup"] >= SPEEDUP_TARGET


def main() -> int:
    rows = run_bench()
    print(f"=== rule maintenance: full re-mine vs incremental "
          f"({BENCH_DATASET}, scale={BENCH_SCALE}, "
          f"batch={UPDATE_BATCH}) ===")
    print(format_rows(rows))
    mean_row = rows[-1]
    print(f"\nrepository: {mean_row['repository_size']} samples; "
          f"mean speedup: {mean_row['speedup']}x "
          f"(target: >= {SPEEDUP_TARGET}x)")
    if mean_row["repository_size"] < 1000:
        print("FAIL: repository below the 1k-sample bar")
        return 1
    return 0 if mean_row["speedup"] >= SPEEDUP_TARGET else 1


if __name__ == "__main__":
    raise SystemExit(main())
