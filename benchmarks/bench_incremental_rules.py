"""Incremental vs full-re-mine rule maintenance (the Section 5.5 bench).

Two sections:

**Rule maintenance.**  Builds a repository of >= 1k complete samples, holds
out a tail of "future" samples, and feeds them back in fixed-size update
batches through two engines: one in ``full`` maintenance mode (every update
triggers an exact re-mine via ``add_repository_samples(...,
remine_rules=True)``) and one in ``incremental`` mode (sketch-based
maintenance).  The full path pays O(repository) pair work per update; the
incremental path is bounded by the ``max_update_pairs`` budget — O(batch) —
so the per-update cost gap widens with the repository.  The acceptance bar
is >= 5x mean speedup.

**Index maintenance.**  Once the rules are maintained incrementally, the
remaining install cost is rebuilding every CDD-index from scratch.  This
section times ``CDDIndex.apply_diff`` (in-place lattice/aR-tree patching
from a small rule diff) against a from-scratch ``CDDIndex`` build at 250,
500 and 1000 rules, asserting that the patched index answers
``candidate_rules`` (and counts ``nodes_visited``) exactly like the fresh
one.  A maintenance diff touches a handful of rules while the rule count
grows with the repository, so the patch should win by >= 3x at 1k rules.

Run directly::

    PYTHONPATH=src python benchmarks/bench_incremental_rules.py [--smoke] [--json]

or under pytest-benchmark::

    python -m pytest benchmarks/bench_incremental_rules.py --benchmark-only
"""

from __future__ import annotations

import dataclasses
import itertools
import random
import sys
from pathlib import Path
from typing import Dict, List, Sequence

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from bench_utils import bench_argument_parser, write_bench_json  # noqa: E402
from repro.core.config import TERiDSConfig  # noqa: E402
from repro.core.engine import TERiDSEngine  # noqa: E402
from repro.core.tuples import Record, Schema  # noqa: E402
from repro.datasets.synthetic import generate_dataset  # noqa: E402
from repro.experiments.harness import format_rows  # noqa: E402
from repro.imputation.cdd import (  # noqa: E402
    CONSTRAINT_CONSTANT,
    CONSTRAINT_INTERVAL,
    MAINTENANCE_FULL,
    MAINTENANCE_INCREMENTAL,
    AttributeConstraint,
    CDDDiscoveryConfig,
    CDDRule,
)
from repro.imputation.repository import DataRepository  # noqa: E402
from repro.indexes.cdd_index import CDDIndex  # noqa: E402
from repro.indexes.pivots import PivotSelectionConfig, select_pivots  # noqa: E402
from repro.metrics.timing import now  # noqa: E402

BENCH_NAME = "incremental_rules"
BENCH_DATASET = "songs"
BENCH_SCALE = 3.0  # repository >= 1k samples at repository_ratio=1.0
BENCH_SEED = 7
UPDATE_BATCH = 16
UPDATE_ROUNDS = 3
SPEEDUP_TARGET = 5.0

INDEX_RULE_COUNTS = (250, 500, 1000)
INDEX_SPEEDUP_TARGET = 3.0  # patch vs rebuild at 1k rules


def _build_setup(scale: float):
    workload = generate_dataset(BENCH_DATASET, missing_rate=0.3,
                                scale=scale, seed=BENCH_SEED,
                                repository_ratio=1.0)
    samples = list(workload.repository.samples)
    holdout_size = UPDATE_BATCH * UPDATE_ROUNDS
    base = samples[:-holdout_size]
    holdout = samples[-holdout_size:]
    config = TERiDSConfig(schema=workload.schema, keywords=workload.keywords,
                          window_size=50)
    return workload, config, base, holdout


def _engine(workload, config, base, mode) -> TERiDSEngine:
    return TERiDSEngine(
        repository=DataRepository(schema=workload.schema, samples=list(base)),
        config=config,
        discovery_config=CDDDiscoveryConfig(maintenance_mode=mode),
    )


def _time_updates(engine: TERiDSEngine, holdout, remine: bool) -> List[float]:
    timings = []
    for round_index in range(UPDATE_ROUNDS):
        batch = holdout[round_index * UPDATE_BATCH:
                        (round_index + 1) * UPDATE_BATCH]
        start = now()
        engine.add_repository_samples(batch, remine_rules=remine)
        timings.append(now() - start)
    return timings


def run_bench(scale: float = BENCH_SCALE) -> List[Dict[str, object]]:
    """Time ``add_repository_samples`` in both maintenance modes."""
    workload, config, base, holdout = _build_setup(scale)
    full_engine = _engine(workload, config, base, MAINTENANCE_FULL)
    incremental_engine = _engine(workload, config, base,
                                 MAINTENANCE_INCREMENTAL)

    full_times = _time_updates(full_engine, holdout, remine=True)
    incremental_times = _time_updates(incremental_engine, holdout,
                                      remine=False)

    rows: List[Dict[str, object]] = []
    for index, (full_s, inc_s) in enumerate(zip(full_times,
                                                incremental_times)):
        rows.append({
            "update": index + 1,
            "repository_size": len(base) + (index + 1) * UPDATE_BATCH,
            "batch": UPDATE_BATCH,
            "full_remine_sec": round(full_s, 4),
            "incremental_sec": round(inc_s, 4),
            "speedup": round(full_s / inc_s, 2) if inc_s > 0 else float("inf"),
        })
    mean_full = sum(full_times) / len(full_times)
    mean_incremental = sum(incremental_times) / len(incremental_times)
    rows.append({
        "update": "mean",
        "repository_size": len(full_engine.repository),
        "batch": UPDATE_BATCH,
        "full_remine_sec": round(mean_full, 4),
        "incremental_sec": round(mean_incremental, 4),
        "speedup": round(mean_full / mean_incremental, 2),
        "rules_full": len(full_engine.rules),
        "rules_incremental": len(incremental_engine.rules),
        "drift": round(incremental_engine.rule_maintainer.drift, 4),
    })
    return rows


# ---------------------------------------------------------------------------
# Index maintenance: apply_diff patch vs from-scratch rebuild
# ---------------------------------------------------------------------------
_IDX_DEPENDENT = "diagnosis"
_IDX_SCHEMA = Schema(attributes=("gender", "symptom", "diagnosis",
                                 "treatment", "duration", "severity"))
_IDX_ROWS = [
    ("male", "weight loss blurred vision", "diabetes", "drug therapy",
     "three weeks", "moderate chronic"),
    ("female", "fever cough low spirit", "pneumonia", "antibiotics rest",
     "five days", "acute severe"),
    ("male", "fever poor appetite cough", "flu", "drink more sleep more",
     "one week", "mild acute"),
    ("female", "red eye itchy shed tears", "conjunctivitis", "eye drop",
     "two days", "mild local"),
    ("male", "blurred vision fatigue", "diabetes", "drug therapy",
     "two months", "moderate chronic"),
    ("female", "cough congestion chills", "flu", "fluids rest",
     "four days", "mild acute"),
    ("male", "chest pain palpitation", "cardio issue", "statin exercise",
     "six months", "severe chronic"),
]


def _index_fixture():
    """Pivot table + probe records over a six-attribute clinical schema."""
    samples = [
        Record(rid=f"s{index}",
               values=dict(zip(_IDX_SCHEMA, row)), source="repository")
        for index, row in enumerate(_IDX_ROWS)
    ]
    repository = DataRepository(schema=_IDX_SCHEMA, samples=samples)
    pivots = select_pivots(repository,
                           PivotSelectionConfig(buckets=5, min_entropy=0.5,
                                                max_pivots=2))
    probes = [
        Record(rid=f"p{index}",
               values={**dict(zip(_IDX_SCHEMA, row)), _IDX_DEPENDENT: None},
               source="stream")
        for index, row in enumerate(_IDX_ROWS[:4])
    ]
    return repository, pivots, probes


def _synthetic_rules(count: int, seed: int) -> List[CDDRule]:
    """``count`` single/two-determinant rules spread over many lattice groups.

    Group keys are all the 1- and 2-subsets of the five non-dependent
    attributes (15 groups), so a small diff leaves most groups untouched —
    the shape a real maintenance batch produces.
    """
    rng = random.Random(seed)
    determinants = [attr for attr in _IDX_SCHEMA if attr != _IDX_DEPENDENT]
    group_keys = ([(attr,) for attr in determinants]
                  + [tuple(sorted(pair))
                     for pair in itertools.combinations(determinants, 2)])
    values_by_attr = {attr: [row[index] for row in _IDX_ROWS]
                      for index, attr in enumerate(_IDX_SCHEMA)}
    rules: List[CDDRule] = []
    for index in range(count):
        key = group_keys[index % len(group_keys)]
        constraints = []
        for position, attr in enumerate(key):
            if position == 0 and index % 5 == 0:
                constraints.append(AttributeConstraint(
                    attribute=attr, kind=CONSTRAINT_CONSTANT,
                    constant=rng.choice(values_by_attr[attr])))
            else:
                low = round(rng.uniform(0.0, 0.5), 3)
                high = round(min(1.0, low + rng.uniform(0.05, 0.4)), 3)
                constraints.append(AttributeConstraint(
                    attribute=attr, kind=CONSTRAINT_INTERVAL,
                    interval=(low, high)))
        rules.append(CDDRule(
            determinants=tuple(constraints),
            dependent=_IDX_DEPENDENT,
            dependent_interval=(0.0, round(rng.uniform(0.2, 0.6), 3)),
            support=rng.randint(2, 12),
            rule_id=f"synth:{index}",
        ))
    return rules


def _widen(rule: CDDRule) -> CDDRule:
    low, high = rule.dependent_interval
    return dataclasses.replace(rule,
                               dependent_interval=(low, min(1.0, high + 0.05)),
                               support=rule.support + 1)


def _make_diff(old_rules: Sequence[CDDRule], seed: int):
    """A maintenance-sized diff: 3 retired, 5 widened, 3 promoted.

    Shaped like a real maintenance batch: the retirements hit one lattice
    group (one update batch shrinks one determinant's band), the widenings
    scatter (support-interval growth is in-place wherever it lands) and the
    promotions open fresh determinant combinations — so most groups stay
    untouched and at most one tree needs a group-local replay.
    """
    rng = random.Random(seed)
    first_group_attrs = old_rules[0].determinant_attributes
    same_group = [rule for rule in old_rules
                  if rule.determinant_attributes == first_group_attrs]
    retired = {rule.rule_id for rule in same_group[:3]}
    widen_pool = [rule for rule in old_rules if rule.rule_id not in retired]
    widened_ids = {rule.rule_id for rule in rng.sample(widen_pool, 5)}
    new_rules: List[CDDRule] = []
    widened: List[CDDRule] = []
    for rule in old_rules:
        if rule.rule_id in retired:
            continue
        if rule.rule_id in widened_ids:
            rule = _widen(rule)
            widened.append(rule)
        new_rules.append(rule)
    determinants = [attr for attr in _IDX_SCHEMA if attr != _IDX_DEPENDENT]
    promoted = [
        CDDRule(
            determinants=tuple(
                AttributeConstraint(attribute=attr, kind=CONSTRAINT_INTERVAL,
                                    interval=(0.0, 0.4 + 0.1 * index))
                for attr in sorted(triple)),
            dependent=_IDX_DEPENDENT,
            dependent_interval=(0.0, 0.5),
            support=4,
            rule_id=f"promoted:{index}",
        )
        for index, triple in enumerate(
            itertools.islice(itertools.combinations(determinants, 3), 3))
    ]
    new_rules.extend(promoted)
    return new_rules, promoted, sorted(retired), widened


def _assert_equivalent(patched: CDDIndex, fresh: CDDIndex, probes) -> None:
    for probe in probes:
        assert (patched.candidate_rules(probe)
                == fresh.candidate_rules(probe)), "candidate sets diverged"
        assert patched.nodes_visited == fresh.nodes_visited, \
            "nodes_visited diverged"


def run_index_bench(rule_counts: Sequence[int] = INDEX_RULE_COUNTS,
                    repeats: int = 5) -> List[Dict[str, object]]:
    """Time ``apply_diff`` vs a from-scratch index build per rule count."""
    _, pivots, probes = _index_fixture()
    rows: List[Dict[str, object]] = []
    for count in rule_counts:
        old_rules = _synthetic_rules(count, seed=BENCH_SEED)
        new_rules, promoted, retired, widened = _make_diff(old_rules,
                                                           seed=BENCH_SEED)
        # Warm the shared pivot-distance cache so both sides are measured
        # with hot coordinates (the cache lives on the runtime context's
        # pivot table, so steady-state installs always run warm).
        CDDIndex(dependent=_IDX_DEPENDENT, rules=new_rules,
                 schema=_IDX_SCHEMA, pivots=pivots)

        patch_times, rebuild_times = [], []
        stats = None
        for _ in range(repeats):
            index = CDDIndex(dependent=_IDX_DEPENDENT, rules=old_rules,
                             schema=_IDX_SCHEMA, pivots=pivots)
            start = now()
            stats = index.apply_diff(promoted=promoted, retired=retired,
                                     widened=widened, rules=new_rules)
            patch_times.append(now() - start)

            start = now()
            fresh = CDDIndex(dependent=_IDX_DEPENDENT, rules=new_rules,
                             schema=_IDX_SCHEMA, pivots=pivots)
            rebuild_times.append(now() - start)
            _assert_equivalent(index, fresh, probes)

        patch_s = min(patch_times)
        rebuild_s = min(rebuild_times)
        rows.append({
            "rules": count,
            "groups": (stats.groups_untouched + stats.groups_patched
                       + stats.groups_replayed + stats.groups_added),
            "groups_untouched": stats.groups_untouched,
            "groups_patched": stats.groups_patched,
            "groups_replayed": stats.groups_replayed,
            "patch_ms": round(patch_s * 1e3, 3),
            "rebuild_ms": round(rebuild_s * 1e3, 3),
            "speedup": round(rebuild_s / patch_s, 2) if patch_s > 0
            else float("inf"),
        })
    return rows


def test_incremental_rule_maintenance(benchmark):
    """pytest-benchmark entry point (one sweep, speedup bar asserted)."""
    rows = benchmark.pedantic(run_bench, rounds=1, iterations=1)
    print("\n=== rule maintenance: full re-mine vs incremental ===")
    print(format_rows(rows))
    assert rows[-1]["repository_size"] >= 1000
    assert rows[-1]["speedup"] >= SPEEDUP_TARGET


def test_index_patch_vs_rebuild(benchmark):
    """pytest-benchmark entry point for the index-maintenance section."""
    rows = benchmark.pedantic(run_index_bench, rounds=1, iterations=1)
    print("\n=== index maintenance: apply_diff patch vs rebuild ===")
    print(format_rows(rows))
    assert rows[-1]["rules"] == 1000
    assert rows[-1]["speedup"] >= INDEX_SPEEDUP_TARGET


def main(argv=None) -> int:
    parser = bench_argument_parser(
        "Incremental rule maintenance + in-place CDD-index patching")
    args = parser.parse_args(argv)

    # The index section is cheap and runs at full size even in smoke mode
    # (the CI gate reads the 1k-rule speedup); the engine section shrinks.
    scale = 1.0 if args.smoke else BENCH_SCALE
    repeats = 3 if args.smoke else 5

    rows = run_bench(scale=scale)
    print(f"=== rule maintenance: full re-mine vs incremental "
          f"({BENCH_DATASET}, scale={scale}, "
          f"batch={UPDATE_BATCH}) ===")
    print(format_rows(rows))
    mean_row = rows[-1]
    print(f"\nrepository: {mean_row['repository_size']} samples; "
          f"mean speedup: {mean_row['speedup']}x "
          f"(target: >= {SPEEDUP_TARGET}x)")

    index_rows = run_index_bench(repeats=repeats)
    print(f"\n=== index maintenance: apply_diff patch vs rebuild "
          f"(diff: 3 retired / 5 widened / 3 promoted) ===")
    print(format_rows(index_rows))
    index_row = index_rows[-1]
    print(f"\npatch speedup at {index_row['rules']} rules: "
          f"{index_row['speedup']}x (target: >= {INDEX_SPEEDUP_TARGET}x)")

    if args.json is not None:
        write_bench_json(BENCH_NAME, {
            "maintenance_rows": rows,
            "index_rows": index_rows,
            "target_mean_speedup": SPEEDUP_TARGET,
            "target_index_speedup": INDEX_SPEEDUP_TARGET,
            "smoke": args.smoke,
        }, path=args.json or None)

    if index_row["speedup"] < INDEX_SPEEDUP_TARGET:
        print(f"FAIL: index patch speedup {index_row['speedup']} below "
              f"target {INDEX_SPEEDUP_TARGET}")
        return 1
    if args.smoke:
        # Smoke gates correctness (patched == fresh, asserted inside the
        # sweep) and the index speedup; the engine-scale speedup bar is
        # only meaningful at full repository scale.
        return 0
    if mean_row["repository_size"] < 1000:
        print("FAIL: repository below the 1k-sample bar")
        return 1
    return 0 if mean_row["speedup"] >= SPEEDUP_TARGET else 1


if __name__ == "__main__":
    raise SystemExit(main())
