"""Figure 4 — pruning power of the four TER-iDS pruning strategies.

The paper reports that the strategies together prune 98.32%-99.43% of the
candidate tuple pairs, with topic-keyword pruning removing the bulk.  At the
bench's reduced scale the totals are lower (smaller windows mean a larger
share of genuinely matching pairs), but the shape — topic keyword pruning
dominant, probability-bound pruning smallest — is preserved.
"""

from bench_utils import (
    BENCH_SCALE,
    BENCH_SEED,
    BENCH_WINDOW,
    FULL_DATASETS,
    run_figure,
)

from repro.experiments.figures import figure4_pruning_power


def test_figure4_pruning_power(benchmark):
    rows = run_figure(
        benchmark, figure4_pruning_power,
        "Figure 4: pruning power per strategy (percent of candidate pairs)",
        datasets=FULL_DATASETS, scale=BENCH_SCALE, window_size=BENCH_WINDOW,
        seed=BENCH_SEED)
    assert len(rows) == len(FULL_DATASETS)
    for row in rows:
        assert 0 <= row["total_pruned_pct"] <= 100
        # Topic keyword pruning removes the largest share (paper's shape).
        assert row["topic_keyword_pct"] >= row["probability_ub_pct"]
