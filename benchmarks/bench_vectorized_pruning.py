"""Vectorized prune cascade vs the scalar per-pair bounds (Theorems 4.1-4.3).

Populates an ER window from the ``citations`` workload, then evaluates one
query against candidate lists of growing size through

* the scalar cascade — ``topic_keyword_prune`` / ``similarity_prune`` /
  ``probability_prune`` called per pair (the seed hot path), and
* the columnar :func:`~repro.core.pruning.batch_prune` kernel gathering the
  candidates from a resident :class:`~repro.core.pruning.PackedStore`,

asserts the survivor masks are identical, and reports pairs/second plus the
speedup.  The acceptance bar is >= 3x at >= 64 candidates per query.

Run directly::

    PYTHONPATH=src python benchmarks/bench_vectorized_pruning.py [--json]

or under pytest-benchmark::

    python -m pytest benchmarks/bench_vectorized_pruning.py --benchmark-only
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Dict, List, Optional

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from bench_utils import bench_argument_parser, write_bench_json  # noqa: E402
from repro.core.config import TERiDSConfig  # noqa: E402
from repro.core.engine import TERiDSEngine  # noqa: E402
from repro.core.pruning import (  # noqa: E402
    HAS_NUMPY,
    PackedStore,
    batch_prune,
    probability_prune,
    similarity_prune,
    topic_keyword_prune,
)
from repro.datasets.synthetic import generate_dataset  # noqa: E402
from repro.experiments.harness import format_rows  # noqa: E402
from repro.metrics.timing import now  # noqa: E402

BENCH_NAME = "vectorized_pruning"
BENCH_DATASET = "citations"
BENCH_SEED = 7
CANDIDATE_COUNTS = (16, 64, 256)
QUERIES = 24
REPEATS = 5
TARGET_SPEEDUP = 3.0
TARGET_CANDIDATES = 64


def _window_synopses(window: int, scale: float, tuples: int):
    workload = generate_dataset(BENCH_DATASET, missing_rate=0.3, scale=scale,
                                seed=BENCH_SEED)
    config = TERiDSConfig(schema=workload.schema, keywords=workload.keywords,
                          alpha=0.5, similarity_ratio=0.5, window_size=window)
    engine = TERiDSEngine(repository=workload.repository, config=config)
    engine.run(list(workload.interleaved_records())[:tuples])
    return engine.grid.synopses(), config


def _scalar_cascade(query, candidates, keywords, gamma, alpha) -> List[bool]:
    mask = []
    for candidate in candidates:
        if topic_keyword_prune(query, candidate, keywords):
            mask.append(False)
        elif similarity_prune(query, candidate, gamma):
            mask.append(False)
        elif probability_prune(query, candidate, gamma, alpha):
            mask.append(False)
        else:
            mask.append(True)
    return mask


def run_bench(candidate_counts=CANDIDATE_COUNTS, queries: int = QUERIES,
              repeats: int = REPEATS, smoke: bool = False,
              params_out: Optional[Dict[str, object]] = None,
              ) -> List[Dict[str, object]]:
    """Time the scalar vs vectorized cascade; one row per candidate count.

    ``params_out``, when given, receives the *effective* workload knobs
    (smoke mode shrinks them) for the machine-readable record.
    """
    if smoke:
        candidate_counts = tuple(count for count in candidate_counts
                                 if count <= 64)
        queries, repeats = 6, 2
    window = max(candidate_counts) + 8
    # The citations profile emits ~170 tuples per unit of scale; size the
    # stream so the window actually fills to the largest candidate count.
    scale = 0.4 if smoke else max(1.0, max(candidate_counts) / 80.0)
    if params_out is not None:
        params_out.update({"dataset": BENCH_DATASET, "queries": queries,
                           "repeats": repeats, "scale": scale,
                           "window": window, "smoke": smoke})
    synopses, config = _window_synopses(
        window=window, scale=scale, tuples=3 * max(candidate_counts))
    if len(synopses) <= max(candidate_counts):
        raise RuntimeError(
            f"window too small: {len(synopses)} synopses for "
            f"{max(candidate_counts)} candidates")
    keywords, gamma, alpha = config.keywords, config.gamma, config.alpha
    store = PackedStore()
    for synopsis in synopses:
        store.insert(synopsis)

    rows: List[Dict[str, object]] = []
    for count in candidate_counts:
        query_synopses = synopses[:queries]
        candidate_lists = [
            [s for s in synopses[: count + 1] if s is not query][:count]
            for query in query_synopses
        ]
        # Warm both paths (packed blocks are already resident via the store).
        scalar_masks = [
            _scalar_cascade(query, candidates, keywords, gamma, alpha)
            for query, candidates in zip(query_synopses, candidate_lists)
        ]

        start = now()
        for _ in range(repeats):
            for query, candidates in zip(query_synopses, candidate_lists):
                _scalar_cascade(query, candidates, keywords, gamma, alpha)
        scalar_seconds = now() - start

        vector_masks = None
        start = now()
        for _ in range(repeats):
            vector_masks = [
                batch_prune(query, candidates, keywords=keywords,
                            gamma=gamma, alpha=alpha, store=store)[0]
                for query, candidates in zip(query_synopses, candidate_lists)
            ]
        vector_seconds = now() - start

        identical = all(
            list(vector) == scalar
            for vector, scalar in zip(vector_masks, scalar_masks))
        pairs = queries * count * repeats
        rows.append({
            "candidates_per_query": count,
            "pairs_timed": pairs,
            "scalar_pairs_per_sec": round(pairs / scalar_seconds, 1),
            "vectorized_pairs_per_sec": round(pairs / vector_seconds, 1),
            "speedup": round(scalar_seconds / vector_seconds, 2),
            "masks_identical": identical,
        })
    return rows


def test_vectorized_pruning(benchmark):
    """pytest-benchmark entry point (one sweep, correctness asserted)."""
    rows = benchmark.pedantic(run_bench, rounds=1, iterations=1)
    print("\n=== vectorized prune cascade vs scalar ===")
    print(format_rows(rows))
    assert all(row["masks_identical"] for row in rows)


def main(argv=None) -> int:
    parser = bench_argument_parser(
        "Vectorized prune-cascade kernel vs the scalar per-pair bounds")
    args = parser.parse_args(argv)
    if not HAS_NUMPY:
        print("numpy unavailable: the vectorized kernel cannot run")
        return 1
    params: Dict[str, object] = {}
    rows = run_bench(smoke=args.smoke, params_out=params)
    print(f"=== vectorized prune cascade vs scalar ({BENCH_DATASET}, "
          f"{params['queries']} queries x {params['repeats']} repeats) ===")
    print(format_rows(rows))
    if not all(row["masks_identical"] for row in rows):
        print("FAIL: the vectorized kernel changed a survivor mask")
        return 1
    target_rows = [row for row in rows
                   if row["candidates_per_query"] >= TARGET_CANDIDATES]
    best = max((row["speedup"] for row in target_rows), default=0.0)
    print(f"\nbest speedup at >= {TARGET_CANDIDATES} candidates/query: "
          f"{best:.2f}x (target: >= {TARGET_SPEEDUP}x)")
    if args.json is not None:
        write_bench_json(BENCH_NAME, {
            "rows": rows,
            "params": params,
            "best_speedup_at_target": best,
            "target_speedup": TARGET_SPEEDUP,
        }, path=args.json or None)
    if args.smoke:
        return 0
    return 0 if best >= TARGET_SPEEDUP else 1


if __name__ == "__main__":
    raise SystemExit(main())
