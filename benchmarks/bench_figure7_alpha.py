"""Figure 7 — efficiency vs the probabilistic threshold α.

Paper shape: the cost of TER-iDS decreases (or stays flat) as α grows,
because fewer candidate pairs survive the probability threshold; TER-iDS is
the cheapest method at every α.
"""

from bench_utils import BENCH_SCALE, BENCH_SEED, BENCH_WINDOW, run_figure

from repro.baselines.pipelines import METHOD_CON_ER, METHOD_IJ_GER, METHOD_TER_IDS
from repro.experiments.figures import figure7_alpha

ALPHAS = (0.1, 0.2, 0.5, 0.8, 0.9)
METHODS = (METHOD_TER_IDS, METHOD_IJ_GER, METHOD_CON_ER)


def test_figure7_alpha(benchmark):
    rows = run_figure(
        benchmark, figure7_alpha,
        "Figure 7: wall clock time (sec/tuple) vs probabilistic threshold alpha",
        dataset="citations", alphas=ALPHAS, methods=METHODS,
        scale=BENCH_SCALE, window_size=BENCH_WINDOW, seed=BENCH_SEED)
    assert len(rows) == len(ALPHAS) * len(METHODS)
    assert {row["alpha"] for row in rows} == set(ALPHAS)
    assert all(row["seconds_per_tuple"] > 0 for row in rows)
