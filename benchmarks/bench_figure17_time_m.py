"""Figure 17 — efficiency vs the number m of missing attributes.

Paper shape: the cost grows with m for every repository-based method (more
imputed candidate instances); con+ER is insensitive to m; TER-iDS needs the
least time.
"""

from bench_utils import BENCH_SCALE, BENCH_SEED, BENCH_WINDOW, run_figure

from repro.baselines.pipelines import METHOD_CON_ER, METHOD_IJ_GER, METHOD_TER_IDS
from repro.experiments.figures import figure17_time_m

MISSING_COUNTS = (1, 2, 3)
METHODS = (METHOD_TER_IDS, METHOD_IJ_GER, METHOD_CON_ER)


def test_figure17_time_vs_missing_attributes(benchmark):
    rows = run_figure(
        benchmark, figure17_time_m,
        "Figure 17: wall clock time (sec/tuple) vs number m of missing attributes",
        dataset="citations", missing_attribute_counts=MISSING_COUNTS,
        methods=METHODS, scale=BENCH_SCALE, window_size=BENCH_WINDOW,
        seed=BENCH_SEED)
    assert len(rows) == len(MISSING_COUNTS) * len(METHODS)
    assert {row["missing_attributes"] for row in rows} == set(MISSING_COUNTS)
