"""Serial vs micro-batch runtime throughput (the staged-runtime bench).

Runs the identical workload through the ``SerialExecutor`` (the paper's
tuple-at-a-time semantics) and the ``MicroBatchExecutor`` at several batch
sizes, verifies that every configuration reports the *same match set*, and
prints the throughput (tuples/second) plus the speedup over serial.  The
acceptance bar for the micro-batch runtime is >= 1.5x at batch size >= 32.

A second section compares the two pooled refinement modes on the same
workload: the legacy per-batch pool (re-pickles every partition's synopses
each batch) against the persistent worker pool with resident synopsis
stores (ships only record deltas, handle orders and evictions).  The
acceptance bar there is a >= 10x drop in steady-state bytes shipped per
batch.

Run directly::

    PYTHONPATH=src python benchmarks/bench_runtime_batching.py [--json]

or under pytest-benchmark::

    python -m pytest benchmarks/bench_runtime_batching.py --benchmark-only
"""

from __future__ import annotations

import gc
import sys
from pathlib import Path
from typing import Dict, List, Optional

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from bench_utils import bench_argument_parser, write_bench_json  # noqa: E402
from repro.core.config import TERiDSConfig  # noqa: E402
from repro.core.engine import TERiDSEngine  # noqa: E402
from repro.datasets.synthetic import generate_dataset  # noqa: E402
from repro.experiments.harness import format_rows  # noqa: E402
from repro.metrics.timing import now  # noqa: E402
from repro.runtime import (  # noqa: E402
    POOL_PER_BATCH,
    POOL_PERSISTENT,
    MicroBatchExecutor,
    SerialExecutor,
)

BENCH_NAME = "runtime_batching"
BENCH_DATASET = "citations"
BENCH_SCALE = 1.0
BENCH_SEED = 7
BENCH_WINDOW = 60
BATCH_SIZES = (8, 32, 64, 128)
TRANSPORT_WORKERS = 2
TRANSPORT_BATCH = 32
TARGET_TRANSPORT_RATIO = 10.0
TELEMETRY_BATCH = 32
TELEMETRY_REPEATS = 5
TARGET_OVERHEAD_PCT = 5.0


def _build(scale: float = BENCH_SCALE, window: int = BENCH_WINDOW):
    workload = generate_dataset(BENCH_DATASET, missing_rate=0.3,
                                scale=scale, seed=BENCH_SEED)
    config = TERiDSConfig(
        schema=workload.schema,
        keywords=workload.keywords,
        alpha=0.5,
        similarity_ratio=0.5,
        window_size=window,
    )
    return workload, config


def _run(executor, scale: float = BENCH_SCALE,
         window: int = BENCH_WINDOW, telemetry: bool = False
         ) -> Dict[str, object]:
    workload, config = _build(scale, window)
    engine = TERiDSEngine(repository=workload.repository, config=config,
                          executor=executor)
    if telemetry:
        engine.enable_telemetry()
    records = list(workload.interleaved_records())
    start = now()
    report = engine.run(records)
    elapsed = now() - start
    breakup = report.breakup_cost.as_dict()
    transport = engine.ctx.transport
    result = {
        "tuples": len(records),
        "seconds": elapsed,
        "throughput": len(records) / elapsed if elapsed > 0 else float("inf"),
        "match_keys": sorted(pair.key() for pair in report.matches),
        "stage_seconds": {stage: round(value * len(records), 6)
                          for stage, value in breakup.items()},
        "transport": {
            "batches": transport.batches,
            "bytes_shipped": transport.bytes_shipped,
            "synopses_shipped": transport.synopses_shipped,
            "orders_shipped": transport.orders_shipped,
            "per_batch_bytes": list(transport.per_batch_bytes),
            "steady_state_bytes_per_batch": transport.steady_state_bytes(),
        },
    }
    engine.close()
    return result


def run_bench(batch_sizes=BATCH_SIZES, max_workers: Optional[int] = None,
              scale: float = BENCH_SCALE,
              window: int = BENCH_WINDOW) -> List[Dict[str, object]]:
    """Run the serial baseline and every batch size; return printable rows."""
    serial = _run(SerialExecutor(), scale, window)
    rows: List[Dict[str, object]] = [{
        "executor": "serial",
        "batch_size": 1,
        "tuples": serial["tuples"],
        "seconds": round(serial["seconds"], 4),
        "tuples_per_sec": round(serial["throughput"], 1),
        "speedup_vs_serial": 1.0,
        "matches_identical": True,
    }]
    for batch_size in batch_sizes:
        result = _run(MicroBatchExecutor(batch_size=batch_size,
                                         max_workers=max_workers),
                      scale, window)
        rows.append({
            "executor": "micro-batch",
            "batch_size": batch_size,
            "tuples": result["tuples"],
            "seconds": round(result["seconds"], 4),
            "tuples_per_sec": round(result["throughput"], 1),
            "speedup_vs_serial": round(result["throughput"]
                                       / serial["throughput"], 2),
            "matches_identical": result["match_keys"] == serial["match_keys"],
        })
    return rows


def run_transport_bench(scale: float = BENCH_SCALE,
                        window: int = BENCH_WINDOW,
                        batch_size: int = TRANSPORT_BATCH,
                        max_workers: int = TRANSPORT_WORKERS,
                        ) -> Dict[str, object]:
    """Bytes shipped per batch: per-batch pool vs persistent workers."""
    results = {}
    for mode in (POOL_PER_BATCH, POOL_PERSISTENT):
        results[mode] = _run(
            MicroBatchExecutor(batch_size=batch_size, max_workers=max_workers,
                               pool_mode=mode),
            scale, window)
    per_batch = results[POOL_PER_BATCH]
    persistent = results[POOL_PERSISTENT]
    legacy_steady = per_batch["transport"]["steady_state_bytes_per_batch"]
    resident_steady = persistent["transport"]["steady_state_bytes_per_batch"]
    return {
        "batch_size": batch_size,
        "max_workers": max_workers,
        "matches_identical": (per_batch["match_keys"]
                              == persistent["match_keys"]),
        "per_batch_pool": per_batch["transport"],
        "persistent_pool": persistent["transport"],
        "per_batch_tuples_per_sec": round(per_batch["throughput"], 1),
        "persistent_tuples_per_sec": round(persistent["throughput"], 1),
        "steady_state_bytes_ratio": round(
            legacy_steady / resident_steady, 2) if resident_steady else None,
    }


def run_telemetry_overhead(scale: float = BENCH_SCALE,
                           window: int = BENCH_WINDOW,
                           batch_size: int = TELEMETRY_BATCH,
                           repeats: int = TELEMETRY_REPEATS
                           ) -> Dict[str, object]:
    """Wall-clock cost of the enabled telemetry plane on the hot path.

    Runs the identical micro-batch workload with telemetry off and on
    (full plane: bound metrics, per-batch tracing, stage spans) in
    adjacent pairs, and reports the *median of the per-pair overheads*.
    Adjacent runs see near-identical machine conditions (frequency
    scaling, caches, background load), so pairing cancels the drift that
    makes distant-run comparisons swing by >10% either way; the median
    then discards pairs a load spike landed in.  The acceptance bar is
    <= TARGET_OVERHEAD_PCT, gated in CI.
    """
    pair_overheads: List[float] = []
    timings: Dict[bool, List[float]] = {False: [], True: []}
    match_keys: Dict[bool, object] = {}
    # One untimed warmup so the first measured pair is not the coldest
    # (imports, allocator warmup, page cache).
    _run(MicroBatchExecutor(batch_size=batch_size), scale, window)
    for repeat in range(repeats):
        # Alternate which side of the pair goes first so any residual
        # within-pair warming bias cancels across repeats.
        order = (False, True) if repeat % 2 == 0 else (True, False)
        pair: Dict[bool, float] = {}
        for enabled in order:
            # Quiesce the collector so a GC pause from the *previous*
            # run's garbage does not land inside this timed one.
            gc.collect()
            result = _run(MicroBatchExecutor(batch_size=batch_size),
                          scale, window, telemetry=enabled)
            pair[enabled] = result["seconds"]
            timings[enabled].append(result["seconds"])
            match_keys[enabled] = result["match_keys"]
        if pair[False] > 0:
            pair_overheads.append(
                (pair[True] - pair[False]) / pair[False] * 100.0)
    pair_overheads.sort()
    overhead_pct = (pair_overheads[len(pair_overheads) // 2]
                    if len(pair_overheads) % 2
                    else (pair_overheads[len(pair_overheads) // 2 - 1]
                          + pair_overheads[len(pair_overheads) // 2]) / 2.0)
    return {
        "batch_size": batch_size,
        "repeats": repeats,
        "disabled_seconds": round(min(timings[False]), 4),
        "enabled_seconds": round(min(timings[True]), 4),
        "pair_overheads_pct": [round(o, 2) for o in pair_overheads],
        "overhead_pct": round(overhead_pct, 2),
        "target_overhead_pct": TARGET_OVERHEAD_PCT,
        "matches_identical": match_keys[False] == match_keys[True],
    }


def test_runtime_batching(benchmark):
    """pytest-benchmark entry point (one full sweep, correctness asserted)."""
    rows = benchmark.pedantic(run_bench, rounds=1, iterations=1)
    print("\n=== runtime batching: serial vs micro-batch ===")
    print(format_rows(rows))
    assert all(row["matches_identical"] for row in rows)


def main(argv=None) -> int:
    parser = bench_argument_parser(
        "Serial vs micro-batch throughput + pooled transport comparison")
    args = parser.parse_args(argv)
    scale = 0.4 if args.smoke else BENCH_SCALE
    window = 30 if args.smoke else BENCH_WINDOW
    batch_sizes = (8, 32) if args.smoke else BATCH_SIZES

    rows = run_bench(batch_sizes=batch_sizes, scale=scale, window=window)
    print("=== runtime batching: serial vs micro-batch "
          f"({BENCH_DATASET}, scale={scale}, window={window}) ===")
    print(format_rows(rows))
    if not all(row["matches_identical"] for row in rows):
        print("FAIL: a micro-batch configuration changed the match set")
        return 1
    target = [row for row in rows
              if row["executor"] == "micro-batch" and row["batch_size"] >= 32]
    best = max(row["speedup_vs_serial"] for row in target)
    print(f"\nbest speedup at batch_size >= 32: {best:.2f}x "
          f"(target: >= 1.5x)")

    transport = run_transport_bench(scale=scale, window=window)
    ratio = transport["steady_state_bytes_ratio"]
    print("\n=== pooled refinement transport: per-batch vs persistent ===")
    print(f"per-batch pool:   "
          f"{transport['per_batch_pool']['steady_state_bytes_per_batch']:.0f}"
          f" steady bytes/batch "
          f"({transport['per_batch_pool']['synopses_shipped']} synopses)")
    print(f"persistent pool:  "
          f"{transport['persistent_pool']['steady_state_bytes_per_batch']:.0f}"
          f" steady bytes/batch "
          f"({transport['persistent_pool']['synopses_shipped']} synopses)")
    if ratio is not None:
        print(f"steady-state bytes ratio: {ratio:.1f}x "
              f"(target: >= {TARGET_TRANSPORT_RATIO}x)")
    else:
        print("steady-state bytes ratio: n/a (persistent pool shipped "
              "no steady-state bytes)")
    if not transport["matches_identical"]:
        print("FAIL: pooled refinement modes disagree on the match set")
        return 1

    overhead = run_telemetry_overhead(scale=scale, window=window,
                                      repeats=1 if args.smoke
                                      else TELEMETRY_REPEATS)
    print("\n=== telemetry plane overhead (micro-batch, "
          f"batch_size={overhead['batch_size']}) ===")
    print(f"disabled: {overhead['disabled_seconds']:.4f}s   "
          f"enabled: {overhead['enabled_seconds']:.4f}s   "
          f"overhead: {overhead['overhead_pct']:+.2f}% "
          f"(target: <= {TARGET_OVERHEAD_PCT}%)")
    if not overhead["matches_identical"]:
        print("FAIL: enabling telemetry changed the match set")
        return 1

    if args.json is not None:
        write_bench_json(BENCH_NAME, {
            "rows": rows,
            "pooled_transport": transport,
            "telemetry_overhead": overhead,
            "params": {"dataset": BENCH_DATASET, "scale": scale,
                       "window": window, "smoke": args.smoke},
            "best_speedup_at_batch_32": best,
            "target_transport_ratio": TARGET_TRANSPORT_RATIO,
            "target_overhead_pct": TARGET_OVERHEAD_PCT,
        }, path=args.json or None)
    if args.smoke:
        return 0
    if best < 1.5:
        return 1
    return 0 if (ratio or 0) >= TARGET_TRANSPORT_RATIO else 1


if __name__ == "__main__":
    raise SystemExit(main())
