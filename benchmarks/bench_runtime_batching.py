"""Serial vs micro-batch runtime throughput (the staged-runtime bench).

Runs the identical workload through the ``SerialExecutor`` (the paper's
tuple-at-a-time semantics) and the ``MicroBatchExecutor`` at several batch
sizes, verifies that every configuration reports the *same match set*, and
prints the throughput (tuples/second) plus the speedup over serial.  The
acceptance bar for the micro-batch runtime is >= 1.5x at batch size >= 32.

Run directly::

    PYTHONPATH=src python benchmarks/bench_runtime_batching.py

or under pytest-benchmark::

    python -m pytest benchmarks/bench_runtime_batching.py --benchmark-only
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Dict, List, Optional

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.core.config import TERiDSConfig  # noqa: E402
from repro.core.engine import TERiDSEngine  # noqa: E402
from repro.datasets.synthetic import generate_dataset  # noqa: E402
from repro.experiments.harness import format_rows  # noqa: E402
from repro.metrics.timing import now  # noqa: E402
from repro.runtime import MicroBatchExecutor, SerialExecutor  # noqa: E402

BENCH_DATASET = "citations"
BENCH_SCALE = 1.0
BENCH_SEED = 7
BENCH_WINDOW = 60
BATCH_SIZES = (8, 32, 64, 128)


def _build():
    workload = generate_dataset(BENCH_DATASET, missing_rate=0.3,
                                scale=BENCH_SCALE, seed=BENCH_SEED)
    config = TERiDSConfig(
        schema=workload.schema,
        keywords=workload.keywords,
        alpha=0.5,
        similarity_ratio=0.5,
        window_size=BENCH_WINDOW,
    )
    return workload, config


def _run(executor) -> Dict[str, object]:
    workload, config = _build()
    engine = TERiDSEngine(repository=workload.repository, config=config,
                          executor=executor)
    records = list(workload.interleaved_records())
    start = now()
    report = engine.run(records)
    elapsed = now() - start
    engine.close()
    return {
        "tuples": len(records),
        "seconds": elapsed,
        "throughput": len(records) / elapsed if elapsed > 0 else float("inf"),
        "match_keys": sorted(pair.key() for pair in report.matches),
    }


def run_bench(batch_sizes=BATCH_SIZES,
              max_workers: Optional[int] = None) -> List[Dict[str, object]]:
    """Run the serial baseline and every batch size; return printable rows."""
    serial = _run(SerialExecutor())
    rows: List[Dict[str, object]] = [{
        "executor": "serial",
        "batch_size": 1,
        "tuples": serial["tuples"],
        "seconds": round(serial["seconds"], 4),
        "tuples_per_sec": round(serial["throughput"], 1),
        "speedup_vs_serial": 1.0,
        "matches_identical": True,
    }]
    for batch_size in batch_sizes:
        result = _run(MicroBatchExecutor(batch_size=batch_size,
                                         max_workers=max_workers))
        rows.append({
            "executor": "micro-batch",
            "batch_size": batch_size,
            "tuples": result["tuples"],
            "seconds": round(result["seconds"], 4),
            "tuples_per_sec": round(result["throughput"], 1),
            "speedup_vs_serial": round(result["throughput"]
                                       / serial["throughput"], 2),
            "matches_identical": result["match_keys"] == serial["match_keys"],
        })
    return rows


def test_runtime_batching(benchmark):
    """pytest-benchmark entry point (one full sweep, correctness asserted)."""
    rows = benchmark.pedantic(run_bench, rounds=1, iterations=1)
    print("\n=== runtime batching: serial vs micro-batch ===")
    print(format_rows(rows))
    assert all(row["matches_identical"] for row in rows)


def main() -> int:
    rows = run_bench()
    print("=== runtime batching: serial vs micro-batch "
          f"({BENCH_DATASET}, scale={BENCH_SCALE}, window={BENCH_WINDOW}) ===")
    print(format_rows(rows))
    if not all(row["matches_identical"] for row in rows):
        print("FAIL: a micro-batch configuration changed the match set")
        return 1
    target = [row for row in rows
              if row["executor"] == "micro-batch" and row["batch_size"] >= 32]
    best = max(row["speedup_vs_serial"] for row in target)
    print(f"\nbest speedup at batch_size >= 32: {best:.2f}x "
          f"(target: >= 1.5x)")
    return 0 if best >= 1.5 else 1


if __name__ == "__main__":
    raise SystemExit(main())
