"""Table 4 — the tested datasets (tuple counts and ground-truth matches).

Regenerates the per-dataset statistics table (here for the scaled synthetic
analogues of Citations / Anime / Bikes / EBooks / Songs).
"""

from bench_utils import BENCH_SCALE, BENCH_SEED, FULL_DATASETS, run_figure

from repro.experiments.figures import table4_dataset_statistics


def test_table4_dataset_statistics(benchmark):
    rows = run_figure(
        benchmark, table4_dataset_statistics,
        "Table 4: tested data sets (scaled synthetic analogues)",
        datasets=FULL_DATASETS, scale=BENCH_SCALE, seed=BENCH_SEED)
    assert len(rows) == len(FULL_DATASETS)
    for row in rows:
        assert row["source_a_tuples"] > 0
        assert row["source_b_tuples"] > 0
        assert row["topic_ground_truth_matches"] >= 0
