"""Figure 13 — accuracy (F-score) vs the missing rate ξ.

Paper shape: accuracy decreases for every method as ξ grows; TER-iDS keeps
the highest F-score across the sweep (88.73%-97.34% in the paper).
"""

from bench_utils import BENCH_SCALE, BENCH_SEED, BENCH_WINDOW, run_figure

from repro.baselines.pipelines import METHOD_CON_ER, METHOD_DD_ER, METHOD_TER_IDS
from repro.experiments.figures import figure13_fscore_missing

RATES = (0.1, 0.3, 0.5, 0.8)
METHODS = (METHOD_TER_IDS, METHOD_DD_ER, METHOD_CON_ER)


def test_figure13_fscore_vs_missing_rate(benchmark):
    rows = run_figure(
        benchmark, figure13_fscore_missing,
        "Figure 13: F-score (%) vs missing rate xi",
        dataset="citations", rates=RATES, methods=METHODS,
        scale=BENCH_SCALE, window_size=BENCH_WINDOW, seed=BENCH_SEED)
    assert len(rows) == len(RATES) * len(METHODS)
    ter = {row["missing_rate"]: row["f_score_pct"]
           for row in rows if row["method"] == METHOD_TER_IDS}
    con = {row["missing_rate"]: row["f_score_pct"]
           for row in rows if row["method"] == METHOD_CON_ER}
    # Shape check: the CDD-based imputation pulls ahead of the stream-only
    # con+ER baseline once missing values are frequent (the paper's gap);
    # at low rates the scaled-down ground truth leaves them within noise.
    for rate in RATES:
        assert ter[rate] >= con[rate] - 5.0
    highest = max(RATES)
    assert ter[highest] >= con[highest]
